//! Deterministic round-trip tests for the crypto primitives.
//!
//! The property suite (`tests/prop.rs`) explores the input space; this
//! suite pins small, fully deterministic cases so that when something
//! breaks, the failure names the exact primitive and input — AES-CTR
//! encrypt/decrypt identity on one side, MAC verify accept/reject on the
//! other — without a seed in the loop.

use tee_crypto::ctr::{CtrEngine, LineCounter, LINE_BYTES};
use tee_crypto::mac::{line_mac, message_mac, MacKey, MacTag, TensorMac};
use tee_crypto::Key;

fn patterned_line(salt: u8) -> [u8; LINE_BYTES] {
    core::array::from_fn(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
}

// ---------------------------------------------------------------- AES-CTR

#[test]
fn ctr_identity_across_counters_and_patterns() {
    let eng = CtrEngine::new(Key::from_seed(0x7EE));
    for (pa, vn) in [(0u64, 0u64), (0x40, 1), (0x1000, 7), (!63, u64::MAX)] {
        for salt in [0u8, 1, 0x5A, 0xFF] {
            let pt = patterned_line(salt);
            let ctr = LineCounter { pa, vn };
            let ct = eng.encrypt_line(&pt, ctr);
            assert_ne!(ct, pt, "pa={pa:#x} vn={vn}: ciphertext must differ");
            assert_eq!(
                eng.decrypt_line(&ct, ctr),
                pt,
                "pa={pa:#x} vn={vn} salt={salt}: decrypt ∘ encrypt ≠ id"
            );
        }
    }
}

#[test]
fn ctr_identity_for_all_zero_and_all_ones_lines() {
    // Degenerate plaintexts exercise the raw keystream: C = KS ⊕ P.
    let eng = CtrEngine::new(Key::from_seed(1));
    let ctr = LineCounter { pa: 0x80, vn: 2 };
    for pt in [[0u8; LINE_BYTES], [0xFF; LINE_BYTES]] {
        assert_eq!(eng.decrypt_line(&eng.encrypt_line(&pt, ctr), ctr), pt);
    }
}

#[test]
fn ctr_encrypt_is_self_inverse_via_keystream() {
    // CTR mode is an XOR stream: encrypting a ciphertext under the same
    // counter must recover the plaintext (encrypt == decrypt).
    let eng = CtrEngine::new(Key::from_seed(0xBEEF));
    let pt = patterned_line(9);
    let ctr = LineCounter { pa: 0x3C0, vn: 11 };
    let ct = eng.encrypt_line(&pt, ctr);
    assert_eq!(eng.encrypt_line(&ct, ctr), pt);
}

#[test]
fn ctr_wrong_key_fails_round_trip() {
    let enc = CtrEngine::new(Key::from_seed(10));
    let dec = CtrEngine::new(Key::from_seed(11));
    let pt = patterned_line(3);
    let ctr = LineCounter { pa: 0x200, vn: 5 };
    assert_ne!(dec.decrypt_line(&enc.encrypt_line(&pt, ctr), ctr), pt);
}

// ------------------------------------------------------------------- MAC

#[test]
fn line_mac_accepts_identical_inputs() {
    let key = MacKey(Key::from_seed(0xA11CE).0);
    let ct = patterned_line(0);
    let tag = line_mac(&key, &ct, 0x40, 3);
    assert_eq!(tag, line_mac(&key, &ct, 0x40, 3));
}

#[test]
fn line_mac_rejects_every_single_byte_position() {
    // Exhaustive over the line: a flip at ANY byte offset must change the
    // tag. Localizes absorption bugs (e.g. a primitive skipping a lane) to
    // the exact offset.
    let key = MacKey(Key::from_seed(0xA11CE).0);
    let ct = patterned_line(7);
    let base = line_mac(&key, &ct, 0x1000, 9);
    for offset in 0..LINE_BYTES {
        let mut tampered = ct;
        tampered[offset] ^= 0x01;
        assert_ne!(
            base,
            line_mac(&key, &tampered, 0x1000, 9),
            "flip at byte {offset} went undetected"
        );
    }
}

#[test]
fn message_mac_accepts_and_rejects() {
    let key = MacKey(Key::from_seed(0xFACE).0);
    let msg: Vec<u8> = (0u16..200).map(|i| i as u8).collect();
    let tag = message_mac(&key, &msg);
    assert_eq!(
        tag,
        message_mac(&key, &msg),
        "verify-accept on equal message"
    );

    let mut truncated = msg.clone();
    truncated.pop();
    assert_ne!(tag, message_mac(&key, &truncated), "length must be bound");

    let mut extended = msg.clone();
    extended.push(0);
    assert_ne!(
        tag,
        message_mac(&key, &extended),
        "extension must be detected"
    );

    let wrong_key = MacKey(Key::from_seed(0xFACF).0);
    assert_ne!(tag, message_mac(&wrong_key, &msg), "key must be bound");
}

#[test]
fn tensor_mac_verify_accepts_matching_aggregate() {
    let key = MacKey(Key::from_seed(0xC0DE).0);
    let mut sender = TensorMac::new();
    let mut receiver = TensorMac::new();
    for i in 0..32u64 {
        let ct = patterned_line(i as u8);
        sender.absorb(line_mac(&key, &ct, i * 64, 1));
        receiver.absorb(line_mac(&key, &ct, i * 64, 1));
    }
    assert_eq!(sender.lines(), 32);
    assert!(
        receiver.verify(sender.tag()),
        "identical streams must verify"
    );
}

#[test]
fn tensor_mac_verify_rejects_any_tampered_line() {
    let key = MacKey(Key::from_seed(0xC0DE).0);
    let lines: Vec<[u8; LINE_BYTES]> = (0..8u8).map(patterned_line).collect();
    let mut good = TensorMac::new();
    for (i, ct) in lines.iter().enumerate() {
        good.absorb(line_mac(&key, ct, i as u64 * 64, 1));
    }
    for victim in 0..lines.len() {
        let mut bad = TensorMac::new();
        for (i, ct) in lines.iter().enumerate() {
            let mut line = *ct;
            if i == victim {
                line[victim] ^= 0x80;
            }
            bad.absorb(line_mac(&key, &line, i as u64 * 64, 1));
        }
        assert!(
            !bad.verify(good.tag()),
            "tamper in line {victim} survived the XOR aggregate"
        );
    }
}

#[test]
fn tensor_mac_rejects_wrong_line_count() {
    // XOR aggregation is order-insensitive but must still bind the set:
    // absorbing a tag twice (replay within a tensor) flips it back out.
    let t1 = MacTag::from_raw(0x1234_5678);
    let t2 = MacTag::from_raw(0x0FED_CBA9);
    let mut honest = TensorMac::new();
    honest.absorb(t1);
    honest.absorb(t2);
    let mut replayed = TensorMac::new();
    replayed.absorb(t1);
    replayed.absorb(t2);
    replayed.absorb(t2);
    replayed.absorb(t2);
    assert_eq!(replayed.lines(), 4);
    assert_eq!(
        replayed.tag(),
        honest.tag(),
        "XOR collapse: duplicated tag cancels — this is why lines() must also be checked"
    );
    assert_ne!(replayed.lines(), honest.lines());
}
