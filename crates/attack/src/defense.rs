//! Priced defenses: traffic shaping on the link, shielding at rest.
//!
//! Both defenses are config knobs whose cost flows through the
//! existing cost model rather than hand-waved percentages:
//!
//! * [`Shaping`] pads wire transfers (to power-of-two slots, or to one
//!   constant-rate slot), so its price is the padding time the link
//!   stays busy beyond the real ciphertext — directly comparable to
//!   the exposure and makespan the serving reports already account.
//! * [`KvShield`] re-encrypts spilled KV into fixed-size shielded
//!   slots on spill and verifies on fetch; its price is the crypto
//!   delta of one staged pass over the spilled/fetched bytes, taken
//!   from [`KvProtocol`] — the same component the serving protocols
//!   are priced with.

use crate::observation::{LinkEvent, Observation};
use serde::{Deserialize, Serialize};
use tee_serve::config::KvProtocol;
use tee_sim::Time;

/// The adversary's measurement resolution: wire occupancy is observed
/// in 100 ns ticks (a conservative, easily buildable bus analyzer).
pub const MEASUREMENT_QUANTUM: Time = Time::from_ns(100);

/// The shaping slot granularity: padded transfers occupy a
/// power-of-two number of 64 us slots, so the adversary sees at most a
/// handful of distinct sizes instead of a near-continuum.
pub const SHAPING_QUANTUM: Time = Time::from_us(64);

/// Fixed shielded-arena slot: spilled KV is stored in 256 MiB
/// superblocks, so at-rest blob sizes no longer track session context.
pub const SHIELD_SLOT_BYTES: u64 = 1 << 28;

/// Link traffic-shaping policy (what the wire schedule gives away).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Shaping {
    /// No shaping: transfers occupy exactly their ciphertext time.
    Unshaped,
    /// Pad each transfer to the next power-of-two multiple of
    /// [`SHAPING_QUANTUM`]: a deterministic coarsening, so observed
    /// entropy can only fall.
    Padded,
    /// Every transfer occupies one fixed slot (the largest padded
    /// transfer of the run): the size channel carries exactly zero
    /// bits, at the highest padding price.
    ConstantRate,
}

impl Shaping {
    /// Stable lowercase label (knob values, report rows, CLI).
    pub fn label(&self) -> &'static str {
        match self {
            Shaping::Unshaped => "unshaped",
            Shaping::Padded => "padded",
            Shaping::ConstantRate => "constant-rate",
        }
    }

    /// Every policy, in increasing-protection order.
    pub fn all() -> [Shaping; 3] {
        [Shaping::Unshaped, Shaping::Padded, Shaping::ConstantRate]
    }

    fn padded_duration(d: Time) -> Time {
        let q = SHAPING_QUANTUM.as_ps();
        let slots = d.as_ps().div_ceil(q).max(1).next_power_of_two();
        Time::from_ps(slots * q)
    }

    /// Applies the policy to an observation: what the adversary sees
    /// afterwards, plus the total padding time the link pays for it.
    pub fn apply(&self, obs: &Observation) -> ShapedObservation {
        match self {
            Shaping::Unshaped => ShapedObservation {
                observation: obs.clone(),
                padding: Time::ZERO,
            },
            Shaping::Padded => {
                let mut padding = Time::ZERO;
                let events = obs
                    .events()
                    .iter()
                    .map(|e| {
                        let d = Self::padded_duration(e.duration);
                        padding += d.saturating_sub(e.duration);
                        LinkEvent {
                            at: e.at,
                            duration: d,
                        }
                    })
                    .collect();
                ShapedObservation {
                    observation: Observation::from_events(events),
                    padding,
                }
            }
            Shaping::ConstantRate => {
                let slot = obs
                    .events()
                    .iter()
                    .map(|e| Self::padded_duration(e.duration))
                    .fold(Time::ZERO, Time::max);
                let mut padding = Time::ZERO;
                let events = obs
                    .events()
                    .iter()
                    .map(|e| {
                        padding += slot.saturating_sub(e.duration);
                        LinkEvent {
                            at: e.at,
                            duration: slot,
                        }
                    })
                    .collect();
                ShapedObservation {
                    observation: Observation::from_events(events),
                    padding,
                }
            }
        }
    }
}

/// A shaped view plus its price.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapedObservation {
    /// What the adversary observes after shaping.
    pub observation: Observation,
    /// Total link time spent on padding (zero when unshaped).
    pub padding: Time,
}

/// At-rest protection for spilled KV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvShield {
    /// Spilled blobs keep their true size (the transfer encryption
    /// still protects content, but size tracks session context).
    Plain,
    /// Re-encrypt into fixed [`SHIELD_SLOT_BYTES`] slots on spill,
    /// verify on fetch: sizes are quantized to superblocks and
    /// ciphertexts re-randomized, so spill patterns stop linking
    /// sessions.
    Shielded,
}

impl KvShield {
    /// Stable lowercase label (knob values, report rows, CLI).
    pub fn label(&self) -> &'static str {
        match self {
            KvShield::Plain => "plain-spill",
            KvShield::Shielded => "shielded",
        }
    }

    /// Both policies, plain first.
    pub fn all() -> [KvShield; 2] {
        [KvShield::Plain, KvShield::Shielded]
    }

    /// What the adversary observes of each at-rest blob size.
    pub fn observed_sizes(&self, sizes: &[u64]) -> Vec<u64> {
        match self {
            KvShield::Plain => sizes.to_vec(),
            KvShield::Shielded => sizes
                .iter()
                .map(|&s| s.max(1).div_ceil(SHIELD_SLOT_BYTES) * SHIELD_SLOT_BYTES)
                .collect(),
        }
    }

    /// The crypto price of shielding: one staged pass over the spilled
    /// bytes (re-encrypt) and one over the fetched bytes (verify),
    /// costed as the staging protocol's delta over a plain wire
    /// transfer of the same bytes — the crypto-only component of the
    /// existing cost model.
    pub fn overhead(&self, spilled_bytes: u64, fetched_bytes: u64) -> Time {
        match self {
            KvShield::Plain => Time::ZERO,
            KvShield::Shielded => {
                let crypto_delta = |bytes: u64| {
                    KvProtocol::Staged
                        .transfer_time(bytes)
                        .saturating_sub(KvProtocol::Plain.transfer_time(bytes))
                };
                crypto_delta(spilled_bytes) + crypto_delta(fetched_bytes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::extractable_bits;

    fn obs(durations_us: &[u64]) -> Observation {
        let events = durations_us
            .iter()
            .enumerate()
            .map(|(i, &d)| LinkEvent {
                at: Time::from_us(1000 * i as u64),
                duration: Time::from_us(d),
            })
            .collect();
        Observation::from_events(events)
    }

    #[test]
    fn labels_and_orders_are_stable() {
        let labels: Vec<&str> = Shaping::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["unshaped", "padded", "constant-rate"]);
        let labels: Vec<&str> = KvShield::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["plain-spill", "shielded"]);
    }

    #[test]
    fn shaping_strictly_orders_leakage_and_prices_padding() {
        let raw = obs(&[70, 130, 260, 510, 1030, 70, 265]);
        let q = MEASUREMENT_QUANTUM;
        let unshaped = Shaping::Unshaped.apply(&raw);
        let padded = Shaping::Padded.apply(&raw);
        let constant = Shaping::ConstantRate.apply(&raw);

        let bits = |s: &ShapedObservation| extractable_bits(&s.observation.features(q));
        assert!(bits(&unshaped) > bits(&padded), "padding must coarsen");
        assert!(bits(&padded) > bits(&constant), "constant rate flattens");
        assert_eq!(bits(&constant), 0.0);

        assert_eq!(unshaped.padding, Time::ZERO);
        assert!(padded.padding > Time::ZERO);
        assert!(constant.padding > padded.padding, "flat slots cost most");
        // Shaping never shrinks a transfer.
        for (before, after) in raw.events().iter().zip(padded.observation.events().iter()) {
            assert!(after.duration >= before.duration);
            assert_eq!(after.at, before.at);
        }
    }

    #[test]
    fn constant_rate_on_empty_observation_is_free() {
        let shaped = Shaping::ConstantRate.apply(&obs(&[]));
        assert!(shaped.observation.is_empty());
        assert_eq!(shaped.padding, Time::ZERO);
    }

    #[test]
    fn shield_quantizes_sizes_and_prices_crypto() {
        let sizes = [10 << 20, 200 << 20, 300 << 20];
        assert_eq!(KvShield::Plain.observed_sizes(&sizes), sizes.to_vec());
        let shielded = KvShield::Shielded.observed_sizes(&sizes);
        assert_eq!(
            shielded,
            vec![SHIELD_SLOT_BYTES, SHIELD_SLOT_BYTES, 2 * SHIELD_SLOT_BYTES]
        );

        assert_eq!(KvShield::Plain.overhead(1 << 30, 1 << 30), Time::ZERO);
        let paid = KvShield::Shielded.overhead(1 << 30, 1 << 30);
        assert!(paid > Time::ZERO, "re-encrypt + verify must cost time");
        let spill_only = KvShield::Shielded.overhead(1 << 30, 0);
        assert!(paid > spill_only, "verify-on-fetch adds to the bill");
    }
}
