//! Traffic analysis: how many bits the wire shape gives away.
//!
//! Two deterministic estimators quantify the channel, and a
//! nearest-centroid classifier demonstrates it:
//!
//! * [`extractable_bits`] — the empirical Shannon entropy of the
//!   observed feature stream: an upper bound on what any decoder can
//!   extract *per observed transfer* from that feature alone. A fully
//!   shaped (constant) stream scores exactly zero.
//! * [`mutual_information_bits`] — the plug-in mutual information
//!   between a ground-truth class (model architecture, batch
//!   schedule, session id) and the observed feature: what the feature
//!   actually reveals about the secret. Bounded by `log2(#classes)`.
//! * [`TrafficClassifier`] — per-class feature histograms with
//!   nearest-centroid (L1) matching, the concrete adversary that
//!   recovers model architecture or batch schedule from sizes alone.
//!
//! Everything here is a pure function of its inputs — counts live in
//! `BTreeMap`s and sums run in key order — so results are
//! byte-identical across thread counts and probe states.

use std::collections::BTreeMap;

fn counts(values: impl Iterator<Item = u64>) -> (BTreeMap<u64, u64>, u64) {
    let mut map = BTreeMap::new();
    let mut total = 0u64;
    for v in values {
        *map.entry(v).or_insert(0) += 1;
        total += 1;
    }
    (map, total)
}

/// Empirical Shannon entropy (bits) of the feature stream: an upper
/// bound on the bits any adversary can extract per observed transfer
/// from this feature. Zero for an empty or constant stream; at most
/// `log2(features.len())`.
pub fn extractable_bits(features: &[u64]) -> f64 {
    let (map, total) = counts(features.iter().copied());
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    let h: f64 = map
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum();
    // A constant stream sums to -0.0; normalize the sign so "no bits"
    // prints (and compares) as exactly 0.
    if h > 0.0 {
        h
    } else {
        0.0
    }
}

/// Plug-in mutual information (bits) between a ground-truth class and
/// an observed feature, over `(class, feature)` samples.
///
/// The plug-in estimator is non-negative, bounded by the entropy of
/// either marginal (so by `log2(#distinct classes)`), and exactly zero
/// when the feature is constant — the properties the defense claims
/// rest on, pinned by property tests.
pub fn mutual_information_bits(samples: &[(u64, u64)]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let n = samples.len() as f64;
    let (classes, _) = counts(samples.iter().map(|&(c, _)| c));
    let (features, _) = counts(samples.iter().map(|&(_, f)| f));
    let mut joint = BTreeMap::new();
    for &(c, f) in samples {
        *joint.entry((c, f)).or_insert(0u64) += 1;
    }
    let mi: f64 = joint
        .iter()
        .map(|(&(c, f), &cnt)| {
            let p_cf = cnt as f64 / n;
            let p_c = classes[&c] as f64 / n;
            let p_f = features[&f] as f64 / n;
            p_cf * (p_cf / (p_c * p_f)).log2()
        })
        .sum();
    // Same -0.0 normalization as the entropy estimator, and a floor for
    // the tiny negative rounding residue a sum of cancelling terms can
    // leave behind.
    if mi > 0.0 {
        mi
    } else {
        0.0
    }
}

/// Nearest-centroid traffic classifier: one normalized feature
/// histogram per class, L1 matching, lexicographic tie-break — fully
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct TrafficClassifier {
    centroids: BTreeMap<String, BTreeMap<u64, f64>>,
}

fn histogram(features: &[u64]) -> BTreeMap<u64, f64> {
    let (map, total) = counts(features.iter().copied());
    let n = (total as f64).max(1.0);
    map.into_iter().map(|(k, c)| (k, c as f64 / n)).collect()
}

fn l1(a: &BTreeMap<u64, f64>, b: &BTreeMap<u64, f64>) -> f64 {
    let mut keys: Vec<u64> = a.keys().chain(b.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    keys.iter()
        .map(|k| {
            let pa = a.get(k).copied().unwrap_or(0.0);
            let pb = b.get(k).copied().unwrap_or(0.0);
            (pa - pb).abs()
        })
        .sum()
}

impl TrafficClassifier {
    /// Trains one centroid per label; repeated labels pool their
    /// features into one histogram.
    pub fn train(labeled: &[(&str, Vec<u64>)]) -> Self {
        let mut pooled: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for (label, features) in labeled {
            pooled
                .entry((*label).to_owned())
                .or_default()
                .extend_from_slice(features);
        }
        let centroids = pooled
            .into_iter()
            .map(|(label, features)| (label, histogram(&features)))
            .collect();
        TrafficClassifier { centroids }
    }

    /// Number of trained classes.
    pub fn classes(&self) -> usize {
        self.centroids.len()
    }

    /// The trained class labels, sorted.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.centroids.keys().map(|s| s.as_str())
    }

    /// The nearest centroid (L1 distance over the union of histogram
    /// bins) to the observed features; ties resolve to the
    /// lexicographically first label. `None` when untrained.
    pub fn classify(&self, features: &[u64]) -> Option<&str> {
        let h = histogram(features);
        let mut best: Option<(&str, f64)> = None;
        for (label, centroid) in &self.centroids {
            let d = l1(&h, centroid);
            let better = match best {
                None => true,
                Some((_, bd)) => d < bd,
            };
            if better {
                best = Some((label, d));
            }
        }
        best.map(|(label, _)| label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_constant_stream_is_zero() {
        assert_eq!(extractable_bits(&[7, 7, 7, 7]), 0.0);
        assert_eq!(extractable_bits(&[]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_stream_is_log2_n() {
        let bits = extractable_bits(&[1, 2, 3, 4]);
        assert!((bits - 2.0).abs() < 1e-12, "{bits}");
    }

    #[test]
    fn mi_is_zero_for_constant_feature_and_full_for_identity() {
        assert_eq!(mutual_information_bits(&[(0, 5), (1, 5), (2, 5)]), 0.0);
        let identity = [(0, 10), (1, 20), (0, 10), (1, 20)];
        let bits = mutual_information_bits(&identity);
        assert!((bits - 1.0).abs() < 1e-12, "{bits}");
    }

    #[test]
    fn mi_is_bounded_by_class_entropy() {
        let samples: Vec<(u64, u64)> = (0..64).map(|i| (i % 3, i * 17)).collect();
        let bits = mutual_information_bits(&samples);
        assert!(bits <= (3f64).log2() + 1e-12, "{bits}");
        assert!(bits >= 0.0);
    }

    #[test]
    fn classifier_recovers_distinct_classes_deterministically() {
        let clf = TrafficClassifier::train(&[
            ("gpt", vec![4, 4, 5, 4]),
            ("bert", vec![9, 9, 8, 9]),
            ("gpt", vec![4, 5]),
        ]);
        assert_eq!(clf.classes(), 2);
        assert_eq!(clf.classify(&[4, 4, 5]), Some("gpt"));
        assert_eq!(clf.classify(&[9, 8]), Some("bert"));
        assert_eq!(clf.classify(&[4, 4, 5]), Some("gpt"), "stable on repeat");
        assert_eq!(TrafficClassifier::default().classify(&[1]), None);
    }

    #[test]
    fn classifier_ties_break_lexicographically() {
        let clf = TrafficClassifier::train(&[("b", vec![1]), ("a", vec![2])]);
        // Feature 3 is equidistant from both centroids.
        assert_eq!(clf.classify(&[3]), Some("a"));
    }
}
