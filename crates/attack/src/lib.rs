//! # tee-attack
//!
//! Adversary & side-channel suite for the TensorTEE reproduction: the
//! repo prices the *defenses* (MAC schemes, staging vs. direct KV
//! protocols); this crate prices the *attacks* they defend against,
//! so "how much does TensorTEE actually hide?" becomes a measurable,
//! explorable quantity.
//!
//! Four pieces:
//!
//! * [`Observation`] — derives a link-level adversary's view from a
//!   [`TraceProbe`](tee_sim::probe::TraceProbe) recording: ciphertext
//!   sizes (wire occupancy) and inter-arrival timings on the CPU–NPU
//!   link, and nothing else.
//! * [`traffic`] — the traffic-analysis adversary: per-class feature
//!   histograms with nearest-centroid matching
//!   ([`TrafficClassifier`]), plus deterministic leakage estimators —
//!   [`extractable_bits`] (entropy per observed transfer) and the
//!   plug-in [`mutual_information_bits`].
//! * [`residency`] — the KV-residency adversary: clusters spill/fetch
//!   transfers by size to recover which sessions share prefixes,
//!   scored in bits against ground truth.
//! * [`defense`] — priced countermeasures: [`Shaping`]
//!   (padded/constant-rate link shaping, priced as padding time) and
//!   [`KvShield`] (shielded-at-rest spilled KV: re-encrypt on spill,
//!   verify on fetch, priced through
//!   [`KvProtocol`](tee_serve::config::KvProtocol)).
//!
//! Everything is a pure function of the recording and the knobs —
//! byte-identical across thread counts, with probes on or off.
//!
//! ## Example
//!
//! ```
//! use tee_attack::{extractable_bits, Observation, Shaping, MEASUREMENT_QUANTUM};
//! use tee_serve::config::SecurityProfile;
//! use tee_serve::{simulate_probed, ServeConfig, TraceConfig};
//! use tee_sim::probe::SharedProbe;
//! use tee_workloads::zoo::by_name;
//!
//! let model = by_name("GPT").unwrap();
//! let cfg = ServeConfig::for_model(&model, 4, 640);
//! let trace = TraceConfig::poisson(12, 16.0, 42).generate();
//! let probe = SharedProbe::recording();
//! simulate_probed(&cfg, &model, &SecurityProfile::tensor_tee(), &trace, &probe);
//!
//! let view = Observation::from_trace(&probe.snapshot().unwrap());
//! let raw = extractable_bits(&view.features(MEASUREMENT_QUANTUM));
//! let shaped = Shaping::ConstantRate.apply(&view);
//! let flat = extractable_bits(&shaped.observation.features(MEASUREMENT_QUANTUM));
//! assert!(raw >= flat && flat == 0.0);
//! ```

pub mod defense;
pub mod observation;
pub mod residency;
pub mod traffic;

pub use defense::{
    KvShield, ShapedObservation, Shaping, MEASUREMENT_QUANTUM, SHAPING_QUANTUM, SHIELD_SLOT_BYTES,
};
pub use observation::{instants_named, LinkEvent, Observation, LINK_TRACK};
pub use residency::{link_sessions, size_bucket, ResidencyFinding};
pub use traffic::{extractable_bits, mutual_information_bits, TrafficClassifier};
