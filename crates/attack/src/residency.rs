//! KV-residency side channel: spill patterns leak session structure.
//!
//! When a serving stack spills session KV to host DRAM and fetches it
//! back (tee-serve's HBM budget, tee-fleet's migrations and parking),
//! the *sizes* of those at-rest blobs track each session's accumulated
//! context. An adversary watching spill/fetch traffic can therefore
//! cluster transfers by size and recover which transfers belong to the
//! same session — i.e. which requests share a prefix — without reading
//! a single plaintext byte.
//!
//! The adversary here is deliberately simple and fully deterministic:
//! it buckets each observed size on a half-octave log scale (a
//! session's KV grows by less than 2x per turn, so its transfers stay
//! in neighbouring buckets, while distinct sessions spread out) and
//! scores the recovered clustering against ground truth with the
//! plug-in mutual-information estimator.

use crate::traffic::mutual_information_bits;

/// Half-octave log bucket of an observed size signal: sizes within
/// ~19% of each other share a bucket. Deterministic, monotone, and
/// defined for zero (bucket 0).
pub fn size_bucket(size: u64) -> u64 {
    if size == 0 {
        return 0;
    }
    // floor(4 * log2(size)) + 1, in integer-friendly f64 (exact for
    // the magnitudes a simulator produces; deterministic either way).
    (4.0 * (size as f64).log2()).floor() as u64 + 1
}

/// What the residency adversary recovered from one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidencyFinding {
    /// Spill/fetch transfers observed.
    pub observed: usize,
    /// Ground-truth sessions among them.
    pub sessions: usize,
    /// Distinct size clusters the adversary formed.
    pub clusters: usize,
    /// Mutual information between true session and recovered cluster:
    /// bits of session identity the spill sizes give away per
    /// transfer. Bounded by `log2(sessions)`.
    pub bits: f64,
}

/// Runs the residency adversary over `(true_session, observed_size)`
/// samples: cluster by [`size_bucket`], score with
/// [`mutual_information_bits`]. The ground-truth session ids are used
/// only for scoring, never by the adversary itself.
pub fn link_sessions(samples: &[(u64, u64)]) -> ResidencyFinding {
    let clustered: Vec<(u64, u64)> = samples
        .iter()
        .map(|&(session, size)| (session, size_bucket(size)))
        .collect();
    let mut sessions: Vec<u64> = clustered.iter().map(|&(s, _)| s).collect();
    sessions.sort_unstable();
    sessions.dedup();
    let mut clusters: Vec<u64> = clustered.iter().map(|&(_, b)| b).collect();
    clusters.sort_unstable();
    clusters.dedup();
    ResidencyFinding {
        observed: samples.len(),
        sessions: sessions.len(),
        clusters: clusters.len(),
        bits: mutual_information_bits(&clustered),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_merge_nearby_sizes() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(1), 1);
        assert!(size_bucket(1000) <= size_bucket(1100));
        // Within ~19%: same bucket.
        assert_eq!(size_bucket(1 << 20), size_bucket((1 << 20) + 1000));
        // A full octave apart: different buckets.
        assert!(size_bucket(2 << 20) > size_bucket(1 << 20));
    }

    #[test]
    fn distinct_session_sizes_leak_and_constant_sizes_do_not() {
        // Three sessions with well-separated KV footprints, two
        // transfers each: the adversary recovers the grouping.
        let leaky = [
            (0, 1 << 20),
            (0, (1 << 20) + 4096),
            (1, 1 << 24),
            (1, (1 << 24) + 4096),
            (2, 1 << 28),
            (2, (1 << 28) + 4096),
        ];
        let found = link_sessions(&leaky);
        assert_eq!(found.observed, 6);
        assert_eq!(found.sessions, 3);
        assert_eq!(found.clusters, 3);
        assert!((found.bits - (3f64).log2()).abs() < 1e-9, "{}", found.bits);

        // Shielded-at-rest: every blob the same padded slot size.
        let shielded: Vec<(u64, u64)> = leaky.iter().map(|&(s, _)| (s, 1 << 28)).collect();
        let found = link_sessions(&shielded);
        assert_eq!(found.clusters, 1);
        assert_eq!(found.bits, 0.0);
    }

    #[test]
    fn empty_run_scores_zero() {
        let found = link_sessions(&[]);
        assert_eq!(found.observed, 0);
        assert_eq!(found.bits, 0.0);
    }
}
