//! The adversary's view of a probe recording.
//!
//! A link-level adversary sits on the CPU–NPU interconnect and sees
//! exactly two things about the protected traffic: **how big** each
//! ciphertext transfer is (wire occupancy) and **when** it happens.
//! It never sees plaintext, event labels, or anything recorded on the
//! compute-side tracks. [`Observation::from_trace`] derives that view
//! from a [`TraceProbe`] recording by keeping only the complete
//! intervals on the [`LINK_TRACK`] timeline — the probe vocabulary
//! every simulator in this workspace uses for wire transfers
//! (`kv_transfer` in tee-serve, `kv_handoff` in tee-fleet) — and
//! deliberately discarding their names.

use tee_sim::probe::{ProbeEvent, TraceProbe};
use tee_sim::Time;

/// The probe track that models the CPU–NPU interconnect.
pub const LINK_TRACK: &str = "link";

/// One wire transfer as the adversary sees it: a start instant and an
/// occupancy duration (the ciphertext-size proxy — bytes are not
/// directly visible, but occupancy at a known wire rate is).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEvent {
    /// When the transfer started.
    pub at: Time,
    /// How long the wire stayed busy.
    pub duration: Time,
}

/// An adversary's view of one run: the ordered wire transfers on the
/// CPU–NPU link, with sizes (as durations) and timings — nothing else.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Observation {
    events: Vec<LinkEvent>,
}

impl Observation {
    /// Derives the adversary's view from a recording: every complete
    /// [`ProbeEvent::Span`] on [`LINK_TRACK`], in emission order,
    /// stripped of its label. Instants and gauges on the link track
    /// are simulator bookkeeping, not wire occupancy, and are not
    /// visible to the adversary.
    pub fn from_trace(trace: &TraceProbe) -> Self {
        let events = trace
            .events()
            .iter()
            .filter(|e| e.track() == LINK_TRACK)
            .filter_map(|e| match e {
                ProbeEvent::Span { start, end, .. } => Some(LinkEvent {
                    at: *start,
                    duration: end.saturating_sub(*start),
                }),
                _ => None,
            })
            .collect();
        Observation { events }
    }

    /// Builds a view directly from `(start, duration)` pairs — for
    /// tests and synthetic traces.
    pub fn from_events(events: Vec<LinkEvent>) -> Self {
        Observation { events }
    }

    /// The observed transfers, in emission order.
    pub fn events(&self) -> &[LinkEvent] {
        &self.events
    }

    /// Number of observed transfers.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the adversary saw no wire activity at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total wire occupancy across all observed transfers.
    pub fn total_busy(&self) -> Time {
        self.events.iter().map(|e| e.duration).sum()
    }

    /// The size feature per transfer: wire occupancy quantized to the
    /// adversary's measurement resolution (`ceil(duration / quantum)`).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn features(&self, quantum: Time) -> Vec<u64> {
        assert!(quantum > Time::ZERO, "measurement quantum must be positive");
        self.events
            .iter()
            .map(|e| e.duration.as_ps().div_ceil(quantum.as_ps()))
            .collect()
    }

    /// Inter-arrival gaps between consecutive transfer starts (empty
    /// for fewer than two transfers). Starts are non-decreasing in
    /// every simulator here, but the gap saturates at zero anyway.
    pub fn inter_arrivals(&self) -> Vec<Time> {
        self.events
            .windows(2)
            .map(|w| w[1].at.saturating_sub(w[0].at))
            .collect()
    }
}

/// Timestamps of every zero-width marker named `name` on `track`, via
/// the public accessors only. Artifact runners use this to correlate
/// an observation with ground truth (e.g. matching `kv_handoff` starts
/// to request arrivals); it is *not* part of the adversary's view.
pub fn instants_named(trace: &TraceProbe, track: &str, name: &str) -> Vec<Time> {
    trace
        .events()
        .iter()
        .filter(|e| e.track() == track && matches!(e, ProbeEvent::Instant { .. }))
        .filter(|e| e.name() == Some(name))
        .map(|e| e.at())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tee_sim::probe::Probe;

    fn recorded() -> TraceProbe {
        let mut p = TraceProbe::new();
        p.span("NPU", "decode", Time::from_us(0), Time::from_us(50));
        p.span("link", "kv_transfer", Time::from_us(10), Time::from_us(14));
        p.instant("CPU", "kv_fetch", Time::from_us(10));
        p.span("link", "kv_transfer", Time::from_us(60), Time::from_us(69));
        p.gauge("link", "wire", Time::from_us(70), 123);
        p.instant("CPU", "kv_fetch", Time::from_us(60));
        p
    }

    #[test]
    fn view_keeps_only_link_spans() {
        let obs = Observation::from_trace(&recorded());
        assert_eq!(obs.len(), 2);
        assert_eq!(obs.events()[0].at, Time::from_us(10));
        assert_eq!(obs.events()[0].duration, Time::from_us(4));
        assert_eq!(obs.events()[1].duration, Time::from_us(9));
        assert_eq!(obs.total_busy(), Time::from_us(13));
    }

    #[test]
    fn features_quantize_durations_upward() {
        let obs = Observation::from_trace(&recorded());
        assert_eq!(obs.features(Time::from_us(2)), vec![2, 5]);
        assert_eq!(obs.features(Time::from_us(10)), vec![1, 1]);
    }

    #[test]
    fn inter_arrivals_are_start_to_start() {
        let obs = Observation::from_trace(&recorded());
        assert_eq!(obs.inter_arrivals(), vec![Time::from_us(50)]);
        assert!(Observation::default().inter_arrivals().is_empty());
        assert!(Observation::default().is_empty());
    }

    #[test]
    fn instants_named_filters_track_and_label() {
        let trace = recorded();
        let fetches = instants_named(&trace, "CPU", "kv_fetch");
        assert_eq!(fetches, vec![Time::from_us(10), Time::from_us(60)]);
        assert!(instants_named(&trace, "CPU", "kv_evict").is_empty());
        assert!(instants_named(&trace, "link", "kv_fetch").is_empty());
    }
}
