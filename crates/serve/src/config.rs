//! Serving-system configuration: the NPU shape, continuous-batching
//! knobs, the KV-cache HBM budget, and the per-mode security profile
//! (MAC scheme + KV transfer protocol).

use serde::Serialize;
use tee_comm::link::PcieLink;
use tee_comm::protocol::{DirectProtocol, StagingProtocol};
use tee_mem::DramConfig;
use tee_npu::{MacScheme, NpuConfig};
use tee_sim::Time;
use tee_workloads::zoo::ModelConfig;

/// Static configuration of the serving system.
#[derive(Debug, Clone, Serialize)]
pub struct ServeConfig {
    /// The NPU executing prefill and decode iterations (Table 1 shape).
    pub npu: NpuConfig,
    /// Maximum simultaneously active (prefilling + decoding) requests.
    pub max_batch: usize,
    /// Maximum new prompt tokens admitted into one iteration (Orca-style
    /// iteration-level admission; a longer prompt is admitted alone).
    pub prefill_token_budget: u64,
    /// HBM bytes reserved for KV caches (what is left after weights and
    /// activations). KV exceeding this budget is offloaded to CPU DRAM
    /// and pays the mode's transfer protocol to come back.
    pub kv_hbm_bytes: u64,
}

impl ServeConfig {
    /// A serving configuration for `model` whose KV budget holds roughly
    /// `resident_requests` requests at `steady_tokens` of context — the
    /// knob that decides when KV offloading starts.
    pub fn for_model(model: &ModelConfig, resident_requests: u64, steady_tokens: u64) -> Self {
        let kv = KvSpec::of(model);
        ServeConfig {
            npu: NpuConfig::default(),
            max_batch: 16,
            prefill_token_budget: 4096,
            kv_hbm_bytes: kv.bytes_per_token * steady_tokens * resident_requests,
        }
    }

    /// Replaces the NPU configuration (builder form).
    pub fn with_npu(mut self, npu: NpuConfig) -> Self {
        self.npu = npu;
        self
    }

    /// Replaces the KV HBM budget (builder form).
    pub fn with_kv_hbm_bytes(mut self, bytes: u64) -> Self {
        self.kv_hbm_bytes = bytes;
        self
    }
}

/// Per-token KV-cache footprint of a model (K and V, all layers, fp16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct KvSpec {
    /// KV bytes appended per generated/prefilled token.
    pub bytes_per_token: u64,
    /// KV bytes read per layer per cached token during decode attention.
    pub bytes_per_token_per_layer: u64,
}

impl KvSpec {
    /// The KV footprint of `model`: `2 · layers · hidden` fp16 elements
    /// per token.
    pub fn of(model: &ModelConfig) -> Self {
        const FP16: u64 = 2;
        let per_layer = 2 * model.hidden * FP16;
        KvSpec {
            bytes_per_token: model.layers * per_layer,
            bytes_per_token_per_layer: per_layer,
        }
    }
}

/// How offloaded KV blocks travel between NPU HBM and CPU DRAM.
///
/// Mirrors the CPU↔NPU gradient/weight paths of the training system
/// (§3.3 vs §4.4): the staging protocol re-encrypts at both edges and
/// serializes against compute, the direct protocol is a DMA plus one
/// trusted metadata packet and overlaps compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum KvProtocol {
    /// Plain DMA (non-secure reference).
    Plain,
    /// Graviton-like staging: decrypt → re-encrypt → bus → decrypt →
    /// re-encrypt (§3.3). Cannot overlap compute.
    Staged,
    /// TensorTEE direct transfer: shared session key, tensor-granularity
    /// MAC travels on the trusted channel (§4.4). Overlaps compute.
    Direct,
}

impl KvProtocol {
    /// Serialized wall-clock cost of moving `bytes` one way, including the
    /// CPU-DRAM sink/source bandwidth cap (DDR4 must absorb the stream).
    pub fn transfer_time(&self, bytes: u64) -> Time {
        if bytes == 0 {
            return Time::ZERO;
        }
        let link = match self {
            KvProtocol::Plain => {
                let mut link = PcieLink::gen4_x16();
                link.transfer(Time::ZERO, bytes)
            }
            KvProtocol::Staged => {
                let mut p = StagingProtocol::new();
                p.transfer(Time::ZERO, bytes).total()
            }
            KvProtocol::Direct => {
                let mut p = DirectProtocol::new();
                p.transfer(Time::ZERO, bytes).total()
            }
        };
        let dram =
            Time::from_secs_f64(bytes as f64 / DramConfig::ddr4_2400_2ch().total_bytes_per_sec());
        link.max(dram)
    }

    /// Whether KV transfers can hide behind the iteration's NPU compute
    /// (the staging protocol contends for AES engines and DRAM bandwidth,
    /// §3.3, so it cannot).
    pub fn can_overlap_compute(&self) -> bool {
        !matches!(self, KvProtocol::Staged)
    }
}

/// One serving security mode: the NPU MAC-granularity scheme pricing
/// every prefill/decode stream plus the KV offload transfer protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SecurityProfile {
    /// Display label (matches the training-side mode labels).
    pub label: &'static str,
    /// MAC scheme the NPU engine runs under.
    pub mac: MacScheme,
    /// KV HBM↔DRAM transfer protocol.
    pub kv_protocol: KvProtocol,
}

impl SecurityProfile {
    /// No protection anywhere (performance reference).
    pub fn non_secure() -> Self {
        SecurityProfile {
            label: "Non-Secure",
            mac: MacScheme::None,
            kv_protocol: KvProtocol::Plain,
        }
    }

    /// SGX+MGX: coarse 512 B MAC blocks on the NPU (§3.2) and the staging
    /// KV path.
    pub fn sgx_mgx() -> Self {
        SecurityProfile {
            label: "SGX+MGX",
            mac: MacScheme::PerBlock { granularity: 512 },
            kv_protocol: KvProtocol::Staged,
        }
    }

    /// TensorTEE: tensor-granularity delayed MAC (§4.3) and the direct KV
    /// path (§4.4).
    pub fn tensor_tee() -> Self {
        SecurityProfile {
            label: "TensorTEE",
            mac: MacScheme::TensorDelayed,
            kv_protocol: KvProtocol::Direct,
        }
    }

    /// All three, in the paper's presentation order.
    pub fn all() -> [SecurityProfile; 3] {
        [Self::non_secure(), Self::sgx_mgx(), Self::tensor_tee()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tee_workloads::zoo::by_name;

    #[test]
    fn kv_spec_counts_k_and_v() {
        let m = by_name("GPT2-M").unwrap();
        let kv = KvSpec::of(&m);
        assert_eq!(kv.bytes_per_token, m.layers * 2 * m.hidden * 2);
        assert_eq!(kv.bytes_per_token, m.layers * kv.bytes_per_token_per_layer);
    }

    #[test]
    fn staged_kv_transfer_costs_more_than_direct() {
        let bytes = 64 << 20;
        let staged = KvProtocol::Staged.transfer_time(bytes);
        let direct = KvProtocol::Direct.transfer_time(bytes);
        let plain = KvProtocol::Plain.transfer_time(bytes);
        assert!(staged > direct, "{staged} vs {direct}");
        assert!(direct >= plain);
        assert_eq!(KvProtocol::Plain.transfer_time(0), Time::ZERO);
    }

    #[test]
    fn overlap_capabilities_mirror_training_protocols() {
        assert!(KvProtocol::Plain.can_overlap_compute());
        assert!(KvProtocol::Direct.can_overlap_compute());
        assert!(!KvProtocol::Staged.can_overlap_compute());
    }

    #[test]
    fn profiles_cover_the_three_modes() {
        let all = SecurityProfile::all();
        assert_eq!(all.len(), 3);
        assert_eq!(all[1].label, "SGX+MGX");
        assert_eq!(all[2].kv_protocol, KvProtocol::Direct);
        assert!(matches!(all[2].mac, MacScheme::TensorDelayed));
    }

    #[test]
    fn config_budget_scales_with_residency() {
        let m = by_name("GPT2-M").unwrap();
        let small = ServeConfig::for_model(&m, 2, 512);
        let large = ServeConfig::for_model(&m, 8, 512);
        assert_eq!(large.kv_hbm_bytes, 4 * small.kv_hbm_bytes);
        assert!(small.max_batch > 0);
    }
}
