//! Per-request KV caches as first-class tensors with explicit residency:
//! NPU HBM (decode reads them at GDDR bandwidth) or CPU DRAM (offloaded —
//! they must travel back over the CPU↔NPU link, paying the mode's
//! transfer protocol, before the request can decode again).
//!
//! This is the serving-side analogue of the training system's gradient /
//! weight streams: the tensors are per-request instead of per-model, and
//! they migrate under memory pressure instead of once per step.

use std::collections::{BTreeMap, BTreeSet};
use tee_sim::StatSet;

/// Where a request's KV cache currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Resident in NPU HBM — decodable.
    Hbm,
    /// Offloaded to CPU DRAM — must be fetched before decoding.
    Dram,
}

/// One request's KV cache.
#[derive(Debug, Clone, Copy)]
struct KvEntry {
    bytes: u64,
    residency: Residency,
    /// Iteration clock of the last schedule — the LRU eviction key.
    last_used: u64,
}

/// The result of reserving HBM residency for one request's KV.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReserveOutcome {
    /// Bytes fetched DRAM → HBM (the entry was offloaded).
    pub fetched_bytes: u64,
    /// Bytes other entries offloaded HBM → DRAM to make room.
    pub offloaded_bytes: u64,
}

/// A bounded HBM pool of per-request KV caches with DRAM spill.
///
/// Deterministic by construction: entries live in a `BTreeMap`, eviction
/// order is (last_used, id), and all byte accounting is integer.
#[derive(Debug)]
pub struct KvPool {
    budget: u64,
    hbm_used: u64,
    entries: BTreeMap<u32, KvEntry>,
    clock: u64,
    stats: StatSet,
}

impl KvPool {
    /// Creates a pool with the given HBM byte budget.
    pub fn new(budget: u64) -> Self {
        KvPool {
            budget,
            hbm_used: 0,
            entries: BTreeMap::new(),
            clock: 0,
            stats: StatSet::new("kv_pool"),
        }
    }

    /// Advances the iteration clock (call once per scheduler iteration).
    pub fn tick(&mut self) {
        self.clock += 1;
    }

    /// HBM bytes currently resident.
    pub fn hbm_used(&self) -> u64 {
        self.hbm_used
    }

    /// The HBM budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The residency of `id`'s KV, if it exists.
    pub fn residency(&self, id: u32) -> Option<Residency> {
        self.entries.get(&id).map(|e| e.residency)
    }

    /// Current KV bytes of `id` (0 when absent).
    pub fn bytes_of(&self, id: u32) -> u64 {
        self.entries.get(&id).map_or(0, |e| e.bytes)
    }

    /// Occupancy/migration counters (`fetches`, `offloads`,
    /// `fetched_bytes`, `offloaded_bytes`).
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Ensures `id`'s KV is HBM-resident at `bytes` (growing it if
    /// needed), evicting least-recently-used unprotected entries to DRAM
    /// to make room. Returns `None` — leaving all residencies untouched —
    /// when the footprint cannot fit, unless `force` is set (the scheduler
    /// forces its highest-priority request so progress is guaranteed even
    /// if one request's KV alone exceeds the budget).
    pub fn reserve(
        &mut self,
        id: u32,
        bytes: u64,
        protected: &BTreeSet<u32>,
        force: bool,
    ) -> Option<ReserveOutcome> {
        let is_new = !self.entries.contains_key(&id);
        let entry = *self.entries.entry(id).or_insert(KvEntry {
            bytes: 0,
            residency: Residency::Dram,
            last_used: self.clock,
        });
        let old_hbm = match entry.residency {
            Residency::Hbm => entry.bytes,
            Residency::Dram => 0,
        };
        // Plan evictions until the grown entry fits (LRU, oldest first;
        // ties break on the lower id via the BTreeMap order).
        let mut victims: Vec<(u32, u64)> = Vec::new();
        let mut freed = 0u64;
        if self.hbm_used - old_hbm + bytes > self.budget {
            let mut candidates: Vec<(u64, u32, u64)> = self
                .entries
                .iter()
                .filter(|(&k, e)| {
                    k != id && e.residency == Residency::Hbm && !protected.contains(&k)
                })
                .map(|(&k, e)| (e.last_used, k, e.bytes))
                .collect();
            candidates.sort_unstable();
            for (_, k, b) in candidates {
                if self.hbm_used - old_hbm - freed + bytes <= self.budget {
                    break;
                }
                victims.push((k, b));
                freed += b;
            }
            if self.hbm_used - old_hbm - freed + bytes > self.budget && !force {
                if is_new {
                    // A failed reserve must leave the pool untouched — drop
                    // the empty entry the lookup just materialized.
                    self.entries.remove(&id);
                }
                return None;
            }
        }
        for (k, b) in &victims {
            let e = self.entries.get_mut(k).expect("victim exists");
            e.residency = Residency::Dram;
            self.hbm_used -= b;
            self.stats.bump("offloads");
            self.stats.add("offloaded_bytes", *b);
        }
        let fetched = match entry.residency {
            Residency::Dram if entry.bytes > 0 => {
                self.stats.bump("fetches");
                self.stats.add("fetched_bytes", entry.bytes);
                entry.bytes
            }
            _ => 0,
        };
        let e = self.entries.get_mut(&id).expect("entry exists");
        e.bytes = bytes;
        e.residency = Residency::Hbm;
        e.last_used = self.clock;
        self.hbm_used = self.hbm_used - old_hbm + bytes;
        Some(ReserveOutcome {
            fetched_bytes: fetched,
            offloaded_bytes: victims.iter().map(|(_, b)| *b).sum(),
        })
    }

    /// Releases `id`'s KV entirely (request completed). Returns the bytes
    /// freed from HBM.
    pub fn release(&mut self, id: u32) -> u64 {
        match self.entries.remove(&id) {
            Some(e) if e.residency == Residency::Hbm => {
                self.hbm_used -= e.bytes;
                e.bytes
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protect(ids: &[u32]) -> BTreeSet<u32> {
        ids.iter().copied().collect()
    }

    #[test]
    fn reserve_grows_in_place() {
        let mut p = KvPool::new(1000);
        assert_eq!(
            p.reserve(1, 100, &protect(&[]), false),
            Some(ReserveOutcome::default())
        );
        assert_eq!(
            p.reserve(1, 150, &protect(&[1]), false).unwrap(),
            ReserveOutcome::default()
        );
        assert_eq!(p.hbm_used(), 150);
        assert_eq!(p.residency(1), Some(Residency::Hbm));
        assert_eq!(p.bytes_of(1), 150);
    }

    #[test]
    fn eviction_is_lru_and_pays_offload() {
        let mut p = KvPool::new(300);
        p.reserve(1, 100, &protect(&[]), false).unwrap();
        p.tick();
        p.reserve(2, 100, &protect(&[]), false).unwrap();
        p.tick();
        p.reserve(3, 100, &protect(&[]), false).unwrap();
        p.tick();
        // Touch 1 so 2 becomes the LRU victim.
        p.reserve(1, 100, &protect(&[]), false).unwrap();
        let out = p.reserve(4, 100, &protect(&[]), false).unwrap();
        assert_eq!(out.offloaded_bytes, 100);
        assert_eq!(p.residency(2), Some(Residency::Dram));
        assert_eq!(p.residency(1), Some(Residency::Hbm));
        assert_eq!(p.stats().get("offloads"), 1);
    }

    #[test]
    fn fetch_restores_offloaded_entry() {
        let mut p = KvPool::new(200);
        p.reserve(1, 150, &protect(&[]), false).unwrap();
        p.tick();
        p.reserve(2, 150, &protect(&[]), false).unwrap(); // evicts 1
        assert_eq!(p.residency(1), Some(Residency::Dram));
        p.tick();
        let out = p.reserve(1, 160, &protect(&[]), false).unwrap();
        assert_eq!(out.fetched_bytes, 150, "old bytes travel back");
        assert_eq!(out.offloaded_bytes, 150, "2 got evicted in turn");
        assert_eq!(p.bytes_of(1), 160);
        assert_eq!(p.stats().get("fetched_bytes"), 150);
    }

    #[test]
    fn protected_entries_never_evict_and_reserve_can_fail() {
        let mut p = KvPool::new(200);
        p.reserve(1, 150, &protect(&[]), false).unwrap();
        let before = p.hbm_used();
        assert_eq!(p.reserve(2, 100, &protect(&[1]), false), None);
        assert_eq!(p.hbm_used(), before, "failed reserve changes nothing");
        assert_eq!(
            p.residency(2),
            None,
            "a failed reserve must not materialize a phantom entry"
        );
        assert_eq!(p.residency(1), Some(Residency::Hbm));
        // Forcing over-budget succeeds for the scheduler's head request.
        let out = p.reserve(2, 100, &protect(&[1]), true).unwrap();
        assert_eq!(out, ReserveOutcome::default());
        assert!(p.hbm_used() > p.budget());
    }

    #[test]
    fn release_frees_hbm_only_when_resident() {
        let mut p = KvPool::new(200);
        p.reserve(1, 150, &protect(&[]), false).unwrap();
        p.tick();
        p.reserve(2, 150, &protect(&[]), false).unwrap(); // 1 → DRAM
        assert_eq!(p.release(1), 0, "offloaded KV frees no HBM");
        assert_eq!(p.release(2), 150);
        assert_eq!(p.hbm_used(), 0);
        assert_eq!(p.release(99), 0, "unknown id is a no-op");
    }
}
