//! Request arrival traces: Poisson and bursty arrival processes with
//! per-request prompt/output lengths drawn deterministically from the
//! model-zoo-shaped length distribution.
//!
//! Everything derives from one `tee_sim::SplitMix64` seed, so a trace is
//! byte-reproducible: the same [`TraceConfig`] always generates the same
//! request sequence (the registry's repeat-run invariant depends on it).

use serde::Serialize;
use tee_sim::{SplitMix64, Time};

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Request {
    /// Stable id (index into the trace).
    pub id: u32,
    /// Arrival timestamp.
    pub arrival: Time,
    /// Prompt length in tokens (prefill work).
    pub prompt_tokens: u64,
    /// Tokens to generate, including the first token produced by prefill
    /// (decode work). Always at least 2 so TPOT is defined.
    pub output_tokens: u64,
}

impl Request {
    /// Context length once fully generated (prompt + generated tokens).
    pub fn final_context(&self) -> u64 {
        self.prompt_tokens + self.output_tokens
    }
}

/// The arrival process shaping inter-arrival gaps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential inter-arrival gaps at `rate_rps`
    /// requests per second.
    Poisson {
        /// Long-run arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Bursty arrivals: groups of `burst` requests land together,
    /// separated by exponential gaps sized so the *long-run* rate still
    /// equals `rate_rps` — same offered load, much worse tail.
    Bursty {
        /// Long-run arrival rate in requests per second.
        rate_rps: f64,
        /// Requests per burst.
        burst: u32,
    },
}

impl ArrivalProcess {
    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
        }
    }

    /// The long-run request rate.
    pub fn rate_rps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rps } | ArrivalProcess::Bursty { rate_rps, .. } => {
                rate_rps
            }
        }
    }
}

/// A deterministic trace specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TraceConfig {
    /// Number of requests in the trace.
    pub n_requests: u32,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Mean prompt length in tokens (exponential, clamped to
    /// `[mean/4, 4·mean]`).
    pub prompt_mean: u64,
    /// Mean output length in tokens (exponential, clamped to
    /// `[max(2, mean/4), 4·mean]`).
    pub output_mean: u64,
    /// PRNG seed; every stochastic choice in the trace derives from it.
    pub seed: u64,
}

impl TraceConfig {
    /// A Poisson trace with the default zoo length shape (512-token
    /// prompts, 128-token outputs on average).
    pub fn poisson(n_requests: u32, rate_rps: f64, seed: u64) -> Self {
        TraceConfig {
            n_requests,
            arrivals: ArrivalProcess::Poisson { rate_rps },
            prompt_mean: 512,
            output_mean: 128,
            seed,
        }
    }

    /// A bursty trace at the same long-run rate.
    pub fn bursty(n_requests: u32, rate_rps: f64, burst: u32, seed: u64) -> Self {
        TraceConfig {
            n_requests,
            arrivals: ArrivalProcess::Bursty {
                rate_rps,
                burst: burst.max(1),
            },
            prompt_mean: 512,
            output_mean: 128,
            seed,
        }
    }

    /// The steady per-request context length (prompt + output means) —
    /// what the KV HBM budget is sized against.
    pub fn steady_tokens(&self) -> u64 {
        self.prompt_mean + self.output_mean
    }

    /// Generates the request trace, sorted by arrival time.
    ///
    /// # Panics
    ///
    /// Panics if the arrival rate is not finite and positive, or if a
    /// bursty process has a zero burst size.
    pub fn generate(&self) -> Vec<Request> {
        let rate = self.arrivals.rate_rps();
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive: {rate}"
        );
        if let ArrivalProcess::Bursty { burst, .. } = self.arrivals {
            assert!(burst >= 1, "a burst needs at least one request");
        }
        // Named sub-streams off the one trace seed (`SplitMix64::split`):
        // arrival gaps and length draws stay independent, and adding a
        // stream later cannot shift the existing ones.
        let rng = SplitMix64::new(self.seed);
        let mut arrivals = rng.split(0);
        let mut lengths = rng.split(1);
        let mut at = 0.0f64;
        (0..self.n_requests)
            .map(|id| {
                match self.arrivals {
                    ArrivalProcess::Poisson { .. } => {
                        at += arrivals.next_exp(1.0 / rate);
                    }
                    ArrivalProcess::Bursty { burst, .. } => {
                        // Only the first member of each burst advances the
                        // clock; the gap mean is burst/rate so the long-run
                        // rate matches the Poisson preset.
                        if id % burst == 0 {
                            at += arrivals.next_exp(f64::from(burst) / rate);
                        }
                    }
                }
                Request {
                    id,
                    arrival: Time::from_secs_f64(at),
                    prompt_tokens: sample_len(&mut lengths, self.prompt_mean, 1),
                    output_tokens: sample_len(&mut lengths, self.output_mean, 2),
                }
            })
            .collect()
    }
}

/// Exponential length draw clamped to `[max(floor, mean/4), 4·mean]`.
fn sample_len(rng: &mut SplitMix64, mean: u64, floor: u64) -> u64 {
    let lo = (mean / 4).max(floor);
    let hi = (mean * 4).max(lo);
    (rng.next_exp(mean as f64).round() as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        let cfg = TraceConfig::poisson(50, 8.0, 42);
        assert_eq!(cfg.generate(), cfg.generate());
        let other = TraceConfig::poisson(50, 8.0, 43);
        assert_ne!(cfg.generate(), other.generate(), "seed matters");
    }

    #[test]
    fn arrivals_are_sorted_and_rate_roughly_matches() {
        let cfg = TraceConfig::poisson(2_000, 10.0, 7);
        let trace = cfg.generate();
        assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let span = trace.last().unwrap().arrival.as_secs_f64();
        let rate = trace.len() as f64 / span;
        assert!((rate - 10.0).abs() < 1.0, "empirical rate {rate}");
    }

    #[test]
    fn lengths_are_clamped_and_output_supports_tpot() {
        let cfg = TraceConfig::poisson(500, 5.0, 1);
        for r in cfg.generate() {
            assert!((128..=2048).contains(&r.prompt_tokens), "{r:?}");
            assert!((32..=512).contains(&r.output_tokens), "{r:?}");
            assert!(r.output_tokens >= 2);
            assert_eq!(r.final_context(), r.prompt_tokens + r.output_tokens);
        }
    }

    #[test]
    fn bursty_groups_share_a_timestamp_but_keep_the_rate() {
        let cfg = TraceConfig::bursty(400, 10.0, 4, 11);
        let trace = cfg.generate();
        for group in trace.chunks(4) {
            assert!(group.iter().all(|r| r.arrival == group[0].arrival));
        }
        let span = trace.last().unwrap().arrival.as_secs_f64();
        let rate = trace.len() as f64 / span;
        assert!((rate - 10.0).abs() < 2.0, "empirical rate {rate}");
        assert_eq!(cfg.arrivals.label(), "bursty");
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        TraceConfig::poisson(1, 0.0, 1).generate();
    }

    #[test]
    #[should_panic]
    fn zero_burst_rejected() {
        // The bursty() constructor clamps, but the fields are public.
        let mut c = TraceConfig::bursty(4, 8.0, 4, 1);
        c.arrivals = ArrivalProcess::Bursty {
            rate_rps: 8.0,
            burst: 0,
        };
        c.generate();
    }
}
