//! Request arrival traces: Poisson and bursty arrival processes with
//! per-request prompt/output lengths drawn deterministically from the
//! model-zoo-shaped length distribution.
//!
//! Everything derives from one `tee_sim::SplitMix64` seed, so a trace is
//! byte-reproducible: the same [`TraceConfig`] always generates the same
//! request sequence (the registry's repeat-run invariant depends on it).

use serde::Serialize;
use tee_sim::{SplitMix64, Time};

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Request {
    /// Stable id (index into the trace).
    pub id: u32,
    /// Arrival timestamp.
    pub arrival: Time,
    /// Prompt length in tokens (prefill work).
    pub prompt_tokens: u64,
    /// Tokens to generate, including the first token produced by prefill
    /// (decode work). Always at least 2 so TPOT is defined.
    pub output_tokens: u64,
}

impl Request {
    /// Context length once fully generated (prompt + generated tokens).
    pub fn final_context(&self) -> u64 {
        self.prompt_tokens + self.output_tokens
    }
}

/// The arrival process shaping inter-arrival gaps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential inter-arrival gaps at `rate_rps`
    /// requests per second.
    Poisson {
        /// Long-run arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Bursty arrivals: groups of `burst` requests land together,
    /// separated by exponential gaps sized so the *long-run* rate still
    /// equals `rate_rps` — same offered load, much worse tail.
    Bursty {
        /// Long-run arrival rate in requests per second.
        rate_rps: f64,
        /// Requests per burst.
        burst: u32,
    },
}

impl ArrivalProcess {
    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
        }
    }

    /// The long-run request rate.
    pub fn rate_rps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rps } | ArrivalProcess::Bursty { rate_rps, .. } => {
                rate_rps
            }
        }
    }
}

/// A deterministic trace specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TraceConfig {
    /// Number of requests in the trace.
    pub n_requests: u32,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Mean prompt length in tokens (exponential, clamped to
    /// `[mean/4, 4·mean]`).
    pub prompt_mean: u64,
    /// Mean output length in tokens (exponential, clamped to
    /// `[max(2, mean/4), 4·mean]`).
    pub output_mean: u64,
    /// PRNG seed; every stochastic choice in the trace derives from it.
    pub seed: u64,
}

impl TraceConfig {
    /// A Poisson trace with the default zoo length shape (512-token
    /// prompts, 128-token outputs on average).
    pub fn poisson(n_requests: u32, rate_rps: f64, seed: u64) -> Self {
        TraceConfig {
            n_requests,
            arrivals: ArrivalProcess::Poisson { rate_rps },
            prompt_mean: 512,
            output_mean: 128,
            seed,
        }
    }

    /// A bursty trace at the same long-run rate.
    pub fn bursty(n_requests: u32, rate_rps: f64, burst: u32, seed: u64) -> Self {
        TraceConfig {
            n_requests,
            arrivals: ArrivalProcess::Bursty {
                rate_rps,
                burst: burst.max(1),
            },
            prompt_mean: 512,
            output_mean: 128,
            seed,
        }
    }

    /// The steady per-request context length (prompt + output means) —
    /// what the KV HBM budget is sized against.
    pub fn steady_tokens(&self) -> u64 {
        self.prompt_mean + self.output_mean
    }

    /// Generates the request trace, sorted by arrival time.
    ///
    /// # Panics
    ///
    /// Panics if the arrival rate is not finite and positive, or if a
    /// bursty process has a zero burst size.
    pub fn generate(&self) -> Vec<Request> {
        let rate = self.arrivals.rate_rps();
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive: {rate}"
        );
        if let ArrivalProcess::Bursty { burst, .. } = self.arrivals {
            assert!(burst >= 1, "a burst needs at least one request");
        }
        // Named sub-streams off the one trace seed (`SplitMix64::split`):
        // arrival gaps and length draws stay independent, and adding a
        // stream later cannot shift the existing ones.
        let rng = SplitMix64::new(self.seed);
        let mut arrivals = rng.split(0);
        let mut lengths = rng.split(1);
        let mut at = 0.0f64;
        (0..self.n_requests)
            .map(|id| {
                match self.arrivals {
                    ArrivalProcess::Poisson { .. } => {
                        at += arrivals.next_exp(1.0 / rate);
                    }
                    ArrivalProcess::Bursty { burst, .. } => {
                        // Only the first member of each burst advances the
                        // clock; the gap mean is burst/rate so the long-run
                        // rate matches the Poisson preset.
                        if id % burst == 0 {
                            at += arrivals.next_exp(f64::from(burst) / rate);
                        }
                    }
                }
                Request {
                    id,
                    arrival: Time::from_secs_f64(at),
                    prompt_tokens: sample_len(&mut lengths, self.prompt_mean, 1),
                    output_tokens: sample_len(&mut lengths, self.output_mean, 2),
                }
            })
            .collect()
    }
}

/// Exponential length draw clamped to `[max(floor, mean/4), 4·mean]`.
fn sample_len(rng: &mut SplitMix64, mean: u64, floor: u64) -> u64 {
    let lo = (mean / 4).max(floor);
    let hi = (mean * 4).max(lo);
    (rng.next_exp(mean as f64).round() as u64).clamp(lo, hi)
}

/// Deterministic diurnal rate modulation: a triangle wave around the base
/// rate, so the *long-run* rate is unchanged while the instantaneous rate
/// swings between `(1 - amplitude)` and `(1 + amplitude)` of it.
///
/// A triangle (rather than a sine) keeps the multiplier pure integer-free
/// arithmetic on the phase — no transcendental library calls whose last
/// bit could differ across platforms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Diurnal {
    /// Length of one day in simulated seconds (compressed days are fine —
    /// only the ratio to the trace span matters).
    pub period_secs: f64,
    /// Peak-to-base swing in `[0, 1)`; `0.6` means the peak rate is 1.6×
    /// the base and the trough 0.4×.
    pub amplitude: f64,
}

impl Diurnal {
    /// A compressed day: `period_secs` long with the given swing.
    pub fn new(period_secs: f64, amplitude: f64) -> Self {
        assert!(
            period_secs.is_finite() && period_secs > 0.0,
            "diurnal period must be positive: {period_secs}"
        );
        assert!(
            (0.0..1.0).contains(&amplitude),
            "diurnal amplitude must be in [0, 1): {amplitude}"
        );
        Diurnal {
            period_secs,
            amplitude,
        }
    }

    /// Instantaneous rate multiplier at simulated second `t` — a triangle
    /// wave with mean exactly 1 over a period (trough at phase 0, peak at
    /// phase ½).
    pub fn multiplier(&self, t_secs: f64) -> f64 {
        let phase = (t_secs / self.period_secs).fract();
        let tri = if phase < 0.5 {
            4.0 * phase - 1.0
        } else {
            3.0 - 4.0 * phase
        };
        1.0 + self.amplitude * tri
    }

    /// The peak multiplier — the envelope rate used for thinning.
    fn peak(&self) -> f64 {
        1.0 + self.amplitude
    }
}

/// One turn of a multi-tenant chat session: a [`Request`] plus the
/// session bookkeeping a KV-aware router needs (who owns it, which turn
/// it is, and how much KV context earlier turns already accumulated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SessionRequest {
    /// The underlying request (id is the index in arrival order).
    pub request: Request,
    /// Owning tenant (dense, `0..tenants`).
    pub tenant: u32,
    /// Globally unique session id (dense, in session-start order).
    pub session: u64,
    /// Zero-based turn index within the session.
    pub turn: u32,
    /// KV context carried in from previous turns of this session, in
    /// tokens — what a migration must move over the wire.
    pub context_tokens: u64,
}

impl SessionRequest {
    /// Total KV context once this turn has fully generated.
    pub fn context_after(&self) -> u64 {
        self.context_tokens + self.request.final_context()
    }
}

/// A deterministic multi-tenant session trace: session *starts* follow the
/// configured arrival process (optionally diurnally modulated); each
/// session then runs a geometric number of follow-up turns separated by
/// exponential think times, with all per-session draws taken from its
/// tenant's private [`SplitMix64::split`] sub-stream — so adding a tenant
/// or resizing one tenant's mix never shifts another tenant's trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SessionTraceConfig {
    /// Total requests (turns) in the trace; sessions whose later turns
    /// fall past the cut are truncated, never reordered.
    pub n_requests: u32,
    /// Number of tenants sharing the fleet.
    pub tenants: u32,
    /// Session-start arrival process (aggregate across tenants).
    pub arrivals: ArrivalProcess,
    /// Optional diurnal modulation of the session-start rate.
    pub diurnal: Option<Diurnal>,
    /// Mean turns per session (geometric-ish, clamped to `[1, 4·mean]`).
    pub turns_mean: u32,
    /// Mean think time between consecutive turns of one session.
    pub think_mean_secs: f64,
    /// Mean prompt length per turn in tokens.
    pub prompt_mean: u64,
    /// Mean output length per turn in tokens.
    pub output_mean: u64,
    /// PRNG seed; every stochastic choice derives from it.
    pub seed: u64,
}

impl SessionTraceConfig {
    /// A Poisson session mix with the default zoo length shape.
    pub fn poisson(n_requests: u32, rate_rps: f64, tenants: u32, seed: u64) -> Self {
        SessionTraceConfig {
            n_requests,
            tenants: tenants.max(1),
            arrivals: ArrivalProcess::Poisson { rate_rps },
            diurnal: None,
            turns_mean: 4,
            think_mean_secs: 2.0,
            prompt_mean: 512,
            output_mean: 128,
            seed,
        }
    }

    /// Adds diurnal modulation to the session-start rate.
    pub fn with_diurnal(mut self, diurnal: Diurnal) -> Self {
        self.diurnal = Some(diurnal);
        self
    }

    /// Switches session starts to a bursty process at the same long-run
    /// rate.
    pub fn with_bursty(mut self, burst: u32) -> Self {
        self.arrivals = ArrivalProcess::Bursty {
            rate_rps: self.arrivals.rate_rps(),
            burst: burst.max(1),
        };
        self
    }

    /// The steady per-turn context growth (prompt + output means).
    pub fn steady_tokens(&self) -> u64 {
        self.prompt_mean + self.output_mean
    }

    /// Generates the session trace, sorted by arrival time, ids dense in
    /// arrival order.
    ///
    /// # Panics
    ///
    /// Panics if the arrival rate is not finite and positive.
    pub fn generate(&self) -> Vec<SessionRequest> {
        let rate = self.arrivals.rate_rps();
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive: {rate}"
        );
        let root = SplitMix64::new(self.seed);
        // Named sub-streams: 0 = session-start gaps, 1 = diurnal thinning
        // + tenant assignment; tenants own streams from TENANT_STREAM_BASE
        // up, so the layout can grow without shifting anything.
        let mut starts = root.split(0);
        let mut mixer = root.split(1);
        let mut tenant_rngs: Vec<SplitMix64> = (0..self.tenants.max(1))
            .map(|t| root.split(TENANT_STREAM_BASE + u64::from(t)))
            .collect();
        let peak_rate = rate * self.diurnal.map_or(1.0, |d| d.peak());
        let burst = match self.arrivals {
            ArrivalProcess::Poisson { .. } => 1,
            ArrivalProcess::Bursty { burst, .. } => burst.max(1),
        };
        let mut out: Vec<SessionRequest> = Vec::with_capacity(self.n_requests as usize);
        let mut at = 0.0f64;
        let mut session: u64 = 0;
        let mut in_burst = 0u32;
        while out.len() < self.n_requests as usize {
            // Candidate session starts arrive at the peak-envelope rate;
            // diurnal thinning accepts `rate(t)/peak` of them, which is
            // exactly an inhomogeneous Poisson process at `rate(t)`.
            if in_burst == 0 {
                at += starts.next_exp(f64::from(burst) / peak_rate);
            }
            in_burst = (in_burst + 1) % burst;
            if let Some(d) = self.diurnal {
                if !mixer.next_bool(d.multiplier(at) / d.peak()) {
                    continue;
                }
            }
            let tenant = mixer.next_below(u64::from(self.tenants.max(1))) as u32;
            let rng = &mut tenant_rngs[tenant as usize];
            let turns = (rng.next_exp(f64::from(self.turns_mean)).round() as u32)
                .clamp(1, self.turns_mean * 4);
            let mut turn_at = at;
            let mut context = 0u64;
            for turn in 0..turns {
                if turn > 0 {
                    turn_at += rng.next_exp(self.think_mean_secs.max(1e-6));
                }
                let request = Request {
                    id: 0, // reassigned after the arrival sort
                    arrival: Time::from_secs_f64(turn_at),
                    prompt_tokens: sample_len(rng, self.prompt_mean, 1),
                    output_tokens: sample_len(rng, self.output_mean, 2),
                };
                out.push(SessionRequest {
                    request,
                    tenant,
                    session,
                    turn,
                    context_tokens: context,
                });
                context += request.final_context();
            }
            session += 1;
        }
        // Arrival order with a total deterministic tie-break; truncation
        // then only ever drops the latest turns, never reorders a session
        // (turn times are monotone within one).
        out.sort_by_key(|r| (r.request.arrival, r.session, r.turn));
        out.truncate(self.n_requests as usize);
        for (id, r) in out.iter_mut().enumerate() {
            r.request.id = id as u32;
        }
        out
    }
}

/// First tenant sub-stream id (streams 0/1 belong to the trace itself).
const TENANT_STREAM_BASE: u64 = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        let cfg = TraceConfig::poisson(50, 8.0, 42);
        assert_eq!(cfg.generate(), cfg.generate());
        let other = TraceConfig::poisson(50, 8.0, 43);
        assert_ne!(cfg.generate(), other.generate(), "seed matters");
    }

    #[test]
    fn arrivals_are_sorted_and_rate_roughly_matches() {
        let cfg = TraceConfig::poisson(2_000, 10.0, 7);
        let trace = cfg.generate();
        assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let span = trace.last().unwrap().arrival.as_secs_f64();
        let rate = trace.len() as f64 / span;
        assert!((rate - 10.0).abs() < 1.0, "empirical rate {rate}");
    }

    #[test]
    fn lengths_are_clamped_and_output_supports_tpot() {
        let cfg = TraceConfig::poisson(500, 5.0, 1);
        for r in cfg.generate() {
            assert!((128..=2048).contains(&r.prompt_tokens), "{r:?}");
            assert!((32..=512).contains(&r.output_tokens), "{r:?}");
            assert!(r.output_tokens >= 2);
            assert_eq!(r.final_context(), r.prompt_tokens + r.output_tokens);
        }
    }

    #[test]
    fn bursty_groups_share_a_timestamp_but_keep_the_rate() {
        let cfg = TraceConfig::bursty(400, 10.0, 4, 11);
        let trace = cfg.generate();
        for group in trace.chunks(4) {
            assert!(group.iter().all(|r| r.arrival == group[0].arrival));
        }
        let span = trace.last().unwrap().arrival.as_secs_f64();
        let rate = trace.len() as f64 / span;
        assert!((rate - 10.0).abs() < 2.0, "empirical rate {rate}");
        assert_eq!(cfg.arrivals.label(), "bursty");
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        TraceConfig::poisson(1, 0.0, 1).generate();
    }

    #[test]
    fn session_traces_are_deterministic() {
        let cfg =
            SessionTraceConfig::poisson(300, 6.0, 4, 42).with_diurnal(Diurnal::new(30.0, 0.6));
        assert_eq!(cfg.generate(), cfg.generate());
        let reseeded =
            SessionTraceConfig::poisson(300, 6.0, 4, 43).with_diurnal(Diurnal::new(30.0, 0.6));
        assert_ne!(cfg.generate(), reseeded.generate(), "seed matters");
    }

    #[test]
    fn diurnal_multiplier_has_unit_mean_and_bounded_swing() {
        let d = Diurnal::new(60.0, 0.8);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|i| d.multiplier(60.0 * i as f64 / n as f64))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 1e-3, "triangle mean {mean}");
        for i in 0..n {
            let m = d.multiplier(60.0 * i as f64 / n as f64);
            assert!(
                (0.2 - 1e-9..=1.8 + 1e-9).contains(&m),
                "multiplier {m} out of envelope"
            );
        }
    }

    #[test]
    fn diurnal_session_starts_keep_the_long_run_rate() {
        // Many compressed days, so the thinning averages out: the
        // session-*start* rate must come back to the configured base.
        let cfg = SessionTraceConfig {
            turns_mean: 1,
            ..SessionTraceConfig::poisson(4_000, 20.0, 3, 9)
        }
        .with_diurnal(Diurnal::new(10.0, 0.7));
        let trace = cfg.generate();
        let starts: Vec<&SessionRequest> = trace.iter().filter(|r| r.turn == 0).collect();
        let span = trace.last().unwrap().request.arrival.as_secs_f64();
        let rate = starts.len() as f64 / span;
        assert!(
            (rate - 20.0).abs() < 2.0,
            "empirical session-start rate {rate} vs 20"
        );
    }

    #[test]
    fn sessions_accumulate_context_and_stay_ordered() {
        let cfg = SessionTraceConfig::poisson(500, 8.0, 4, 5);
        let trace = cfg.generate();
        assert_eq!(trace.len(), 500);
        assert!(trace
            .windows(2)
            .all(|w| w[0].request.arrival <= w[1].request.arrival));
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.request.id, i as u32, "ids dense in arrival order");
            assert!(r.tenant < 4);
        }
        // Per session: turns dense from 0, context = sum of earlier turns.
        use std::collections::BTreeMap;
        let mut per_session: BTreeMap<u64, Vec<&SessionRequest>> = BTreeMap::new();
        for r in &trace {
            per_session.entry(r.session).or_default().push(r);
        }
        let mut multi_turn = 0;
        for turns in per_session.values() {
            let mut context = 0u64;
            for (k, r) in turns.iter().enumerate() {
                assert_eq!(r.turn, k as u32, "turns dense per session");
                assert_eq!(r.context_tokens, context, "context accumulates");
                assert_eq!(r.context_after(), context + r.request.final_context());
                context += r.request.final_context();
            }
            if turns.len() > 1 {
                multi_turn += 1;
            }
        }
        assert!(multi_turn > 10, "session mix has follow-up turns");
    }

    #[test]
    fn tenant_sub_streams_are_isolated() {
        // Same seed, different tenant count: tenant draws change (the mixer
        // stream assigns them), but each *tenant's* parameter stream is a
        // stable function of (seed, tenant id) — two configs that both
        // route session 0 to tenant 0 draw identical session shapes.
        let a = SessionTraceConfig::poisson(50, 5.0, 1, 77).generate();
        let b = SessionTraceConfig::poisson(50, 5.0, 1, 77).generate();
        assert_eq!(a, b);
        // And a bursty mix at the same rate still lands its groups together.
        let c = SessionTraceConfig {
            turns_mean: 1,
            ..SessionTraceConfig::poisson(400, 10.0, 2, 3)
        }
        .with_bursty(4);
        let trace = c.generate();
        let starts: Vec<Time> = trace
            .iter()
            .filter(|r| r.turn == 0)
            .map(|r| r.request.arrival)
            .collect();
        let mut shared = 0;
        for w in starts.windows(2) {
            if w[0] == w[1] {
                shared += 1;
            }
        }
        assert!(shared > starts.len() / 3, "bursty starts share timestamps");
    }

    #[test]
    #[should_panic]
    fn zero_burst_rejected() {
        // The bursty() constructor clamps, but the fields are public.
        let mut c = TraceConfig::bursty(4, 8.0, 4, 1);
        c.arrivals = ArrivalProcess::Bursty {
            rate_rps: 8.0,
            burst: 0,
        };
        c.generate();
    }
}
