//! Serving metrics: TTFT/TPOT/latency distributions, goodput, and the
//! KV-migration accounting behind the `serve_latency`/`serve_sweep`
//! artifacts.

use tee_sim::{Histogram, StatSet, Time};

/// The result of one serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests in the trace.
    pub total_requests: u32,
    /// Requests that ran to completion (all of them — the simulator
    /// drains the trace; kept separate so SLO-style early termination can
    /// be added without changing the report shape).
    pub completed_requests: u32,
    /// Output tokens generated across completed requests.
    pub output_tokens: u64,
    /// Timestamp of the last completion (the makespan).
    pub makespan: Time,
    /// Scheduler iterations executed.
    pub iterations: u64,
    /// Time-to-first-token distribution, recorded in nanoseconds.
    pub ttft_ns: Histogram,
    /// End-to-end request latency distribution, in nanoseconds.
    pub latency_ns: Histogram,
    /// Time-per-output-token distribution (per request, decode phase
    /// only), in nanoseconds.
    pub tpot_ns: Histogram,
    /// Aggregate NPU busy time.
    pub npu_time: Time,
    /// Raw (serialized) KV HBM↔DRAM transfer time.
    pub kv_transfer_time: Time,
    /// Exposed (non-overlapped) KV transfer time actually added to the
    /// makespan — the serving analogue of the exposed-communication
    /// fraction.
    pub kv_exposed_time: Time,
    /// KV pool migration counters (`fetches`, `offloads`,
    /// `fetched_bytes`, `offloaded_bytes`).
    pub kv_stats: StatSet,
}

impl ServeReport {
    /// Goodput: completed output tokens per second of makespan.
    pub fn goodput_tps(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.output_tokens as f64 / secs
        }
    }

    /// The `q`-quantile of TTFT (`None` when nothing completed).
    pub fn ttft_percentile(&self, q: f64) -> Option<Time> {
        self.ttft_ns.percentile(q).map(Time::from_ns)
    }

    /// The `q`-quantile of end-to-end latency.
    pub fn latency_percentile(&self, q: f64) -> Option<Time> {
        self.latency_ns.percentile(q).map(Time::from_ns)
    }

    /// Mean time per output token across completed requests.
    pub fn tpot_mean(&self) -> Time {
        Time::from_secs_f64(self.tpot_ns.mean() * 1e-9)
    }

    /// Mean time to first token.
    pub fn ttft_mean(&self) -> Time {
        Time::from_secs_f64(self.ttft_ns.mean() * 1e-9)
    }

    /// Fraction of the makespan lost to exposed KV migration.
    pub fn kv_exposed_fraction(&self) -> f64 {
        let total = self.makespan.as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.kv_exposed_time.as_secs_f64() / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty() -> ServeReport {
        ServeReport {
            total_requests: 0,
            completed_requests: 0,
            output_tokens: 0,
            makespan: Time::ZERO,
            iterations: 0,
            ttft_ns: Histogram::new(),
            latency_ns: Histogram::new(),
            tpot_ns: Histogram::new(),
            npu_time: Time::ZERO,
            kv_transfer_time: Time::ZERO,
            kv_exposed_time: Time::ZERO,
            kv_stats: StatSet::new("kv_pool"),
        }
    }

    #[test]
    fn empty_report_is_sane() {
        let r = empty();
        assert_eq!(r.goodput_tps(), 0.0);
        assert_eq!(r.ttft_percentile(0.99), None);
        assert_eq!(r.kv_exposed_fraction(), 0.0);
        assert_eq!(r.tpot_mean(), Time::ZERO);
    }

    #[test]
    fn goodput_and_percentiles_follow_the_samples() {
        let mut r = empty();
        r.output_tokens = 1_000;
        r.makespan = Time::from_ms(500);
        r.ttft_ns.record(1_000_000);
        r.ttft_ns.record(2_000_000);
        assert_eq!(r.goodput_tps(), 2_000.0);
        let p99 = r.ttft_percentile(0.99).unwrap();
        assert!(p99 >= Time::from_ns(1_000_000) && p99 <= Time::from_ns(2_000_000));
    }
}
