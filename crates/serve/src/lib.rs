//! # tee-serve
//!
//! Secure LLM **inference serving** simulator — the serving-side workload
//! class the training-only reproduction was missing. It stresses the
//! paper's two axes (MAC granularity §4.3, CPU↔NPU transfer protocol
//! §3.3/§4.4) in a new regime: small-batch GEMV decode iterations, and
//! per-request KV caches migrating between NPU HBM and CPU DRAM.
//!
//! * [`trace`] — deterministic Poisson/bursty request arrival traces with
//!   zoo-shaped prompt/output lengths ([`tee_sim::SplitMix64`] seeded),
//! * [`config`] — serving knobs, the per-token [`KvSpec`], and the
//!   [`SecurityProfile`] mapping each paper mode to a MAC scheme + KV
//!   transfer protocol (coarse-MAC + staging vs tensor-MAC + direct),
//! * [`kv`] — the bounded HBM [`KvPool`] with LRU spill to CPU DRAM,
//! * [`scheduler`] — the continuous-batching discrete-event loop pricing
//!   fused prefill/decode iterations through [`tee_npu::NpuEngine`],
//! * [`report`] — [`ServeReport`]: TTFT/TPOT/latency percentiles,
//!   goodput, and exposed KV-migration time.
//!
//! ## Example
//!
//! ```
//! use tee_serve::{simulate, SecurityProfile, ServeConfig, TraceConfig};
//! use tee_workloads::zoo::by_name;
//!
//! let model = by_name("GPT").expect("Table-2 model");
//! let cfg = ServeConfig::for_model(&model, 4, 640);
//! let trace = TraceConfig::poisson(8, 16.0, 42).generate();
//! let report = simulate(&cfg, &model, &SecurityProfile::tensor_tee(), &trace);
//! assert_eq!(report.completed_requests, 8);
//! assert!(report.goodput_tps() > 0.0);
//! ```

pub mod config;
pub mod kv;
pub mod report;
pub mod scheduler;
pub mod trace;

pub use config::{KvProtocol, KvSpec, SecurityProfile, ServeConfig};
pub use kv::{KvPool, Residency};
pub use report::ServeReport;
pub use scheduler::{simulate, simulate_probed};
pub use trace::{
    ArrivalProcess, Diurnal, Request, SessionRequest, SessionTraceConfig, TraceConfig,
};
