//! The continuous-batching serving simulator.
//!
//! A deterministic discrete-event loop on [`tee_sim::EventQueue`]
//! (Orca/vLLM-style iteration-level scheduling):
//!
//! 1. arrivals join a FIFO admission queue,
//! 2. each iteration admits waiting requests up to `max_batch` slots and
//!    `prefill_token_budget` new prompt tokens, then schedules the subset
//!    of active requests whose KV caches fit the HBM budget (in admission
//!    order; surplus KV offloads to CPU DRAM via [`crate::kv::KvPool`]),
//! 3. the iteration is priced as **one fused NPU kernel** through
//!    [`tee_npu::NpuEngine`] under the profile's MAC scheme: model
//!    weights stream once per iteration, prefill tokens add GEMM-shaped
//!    work, decodes add GEMV-shaped work whose attention is
//!    memory-bound KV streaming plus a small rescaling term (the
//!    AMLA-style decode kernel shape — rescaling, not multiplies,
//!    dominates FlashAttention decode; see PAPERS.md),
//! 4. KV fetch/offload traffic pays the profile's transfer protocol;
//!    the direct protocol overlaps the iteration's compute, the staging
//!    protocol serializes (§3.3 vs §4.4, as in training).
//!
//! The loop is bit-reproducible: same config + profile + trace → the
//! same [`ServeReport`].

use crate::config::{KvSpec, SecurityProfile, ServeConfig};
use crate::kv::KvPool;
use crate::report::ServeReport;
use crate::trace::Request;
use std::collections::{BTreeSet, VecDeque};
use tee_comm::schedule::exposed_time;
use tee_npu::engine::{Layer, NpuEngine};
use tee_sim::probe::SharedProbe;
use tee_sim::{EventQueue, Histogram, Time};
use tee_workloads::zoo::ModelConfig;

const FP16: u64 = 2;

/// Discrete events of the serving loop.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Request `trace[i]` arrives.
    Arrival(usize),
    /// The in-flight iteration completes.
    IterDone,
}

/// One admitted (active) request.
#[derive(Debug, Clone, Copy)]
struct Active {
    id: u32,
    arrival: Time,
    prompt_tokens: u64,
    /// Output tokens to produce, including the prefill-produced first one.
    target_tokens: u64,
    /// Tokens produced so far (0 = still waiting for prefill).
    generated: u64,
    /// When the first token came out (set at the end of the prefill
    /// iteration).
    first_token_at: Option<Time>,
}

impl Active {
    fn context(&self) -> u64 {
        self.prompt_tokens + self.generated
    }
}

/// Simulates serving `trace` on one system under one security profile.
///
/// # Panics
///
/// Panics if `cfg.max_batch` is zero.
pub fn simulate(
    cfg: &ServeConfig,
    model: &ModelConfig,
    profile: &SecurityProfile,
    trace: &[Request],
) -> ServeReport {
    simulate_probed(cfg, model, profile, trace, &SharedProbe::Null)
}

/// [`simulate`] with an observability probe: iterations emit
/// prefill/decode/mixed spans on the `NPU` track, KV migrations emit
/// `link` transfer spans and `CPU` spill/fetch instants, and the byte
/// counters accumulate in the probe's metrics registry. The report is
/// byte-identical to the unprobed run — probes only observe.
///
/// # Panics
///
/// Panics if `cfg.max_batch` is zero.
pub fn simulate_probed(
    cfg: &ServeConfig,
    model: &ModelConfig,
    profile: &SecurityProfile,
    trace: &[Request],
    probe: &SharedProbe,
) -> ServeReport {
    assert!(cfg.max_batch > 0, "need at least one batch slot");
    let kv = KvSpec::of(model);
    let engine = NpuEngine::new(cfg.npu.clone(), profile.mac);
    let mut pool = KvPool::new(cfg.kv_hbm_bytes);
    let mut queue: EventQueue<Event> = EventQueue::new();
    for (i, r) in trace.iter().enumerate() {
        queue.schedule(r.arrival, Event::Arrival(i));
    }

    let mut waiting: VecDeque<usize> = VecDeque::new();
    let mut running: Vec<Active> = Vec::new();
    // Ids scheduled in the in-flight iteration (indices into `running`
    // are unstable across completions, ids are not).
    let mut in_flight: Vec<u32> = Vec::new();
    let mut busy = false;

    let mut report = ServeReport {
        total_requests: trace.len() as u32,
        completed_requests: 0,
        output_tokens: 0,
        makespan: Time::ZERO,
        iterations: 0,
        ttft_ns: Histogram::new(),
        latency_ns: Histogram::new(),
        tpot_ns: Histogram::new(),
        npu_time: Time::ZERO,
        kv_transfer_time: Time::ZERO,
        kv_exposed_time: Time::ZERO,
        kv_stats: tee_sim::StatSet::new("kv_pool"),
    };

    loop {
        // Drain the whole delta cycle so co-arrivals (a bursty group lands
        // on one timestamp) are all admissible before the next iteration
        // launches.
        let batch = queue.pop_batch();
        if batch.is_empty() {
            break;
        }
        let now = queue.now();
        for (_, event) in batch {
            match event {
                Event::Arrival(i) => {
                    if probe.enabled() {
                        probe.instant("CPU", "arrival", now);
                    }
                    waiting.push_back(i);
                }
                Event::IterDone => {
                    finish_iteration(now, &in_flight, &mut running, &mut pool, &mut report);
                    in_flight.clear();
                    busy = false;
                }
            }
        }
        if !busy {
            // Admit up to the batch/prefill budgets (a prompt longer than
            // the whole budget is admitted alone rather than starved).
            // Already-admitted requests still awaiting prefill (e.g. ones
            // the KV reservation skipped last iteration) count against the
            // budget too — the bound is on prompt tokens an iteration may
            // prefill, not on admission events.
            let mut new_prompt_tokens: u64 = running
                .iter()
                .filter(|a| a.generated == 0)
                .map(|a| a.prompt_tokens)
                .sum();
            while running.len() < cfg.max_batch {
                let Some(&i) = waiting.front() else { break };
                let r = trace[i];
                if new_prompt_tokens > 0
                    && new_prompt_tokens + r.prompt_tokens > cfg.prefill_token_budget
                {
                    break;
                }
                waiting.pop_front();
                new_prompt_tokens += r.prompt_tokens;
                running.push(Active {
                    id: r.id,
                    arrival: r.arrival,
                    prompt_tokens: r.prompt_tokens,
                    target_tokens: r.output_tokens,
                    generated: 0,
                    first_token_at: None,
                });
            }
            if let Some(dt) = start_iteration(
                now,
                model,
                profile,
                &kv,
                &engine,
                &mut pool,
                &running,
                &mut in_flight,
                &mut report,
                probe,
            ) {
                queue.schedule_after(dt, Event::IterDone);
                busy = true;
            }
        }
    }
    report.kv_stats = pool.stats().clone();
    report
}

/// Plans and prices one iteration. Returns its duration, or `None` when
/// there is nothing to run. Fills `in_flight` with the scheduled ids.
#[allow(clippy::too_many_arguments)]
fn start_iteration(
    now: Time,
    model: &ModelConfig,
    profile: &SecurityProfile,
    kv: &KvSpec,
    engine: &NpuEngine,
    pool: &mut KvPool,
    running: &[Active],
    in_flight: &mut Vec<u32>,
    report: &mut ServeReport,
    probe: &SharedProbe,
) -> Option<Time> {
    if running.is_empty() {
        return None;
    }
    pool.tick();
    // Reserve KV residency in admission order; the head request is forced
    // so progress is guaranteed even when its KV alone exceeds the budget.
    let mut protected: BTreeSet<u32> = BTreeSet::new();
    let mut fetched = 0u64;
    let mut offloaded = 0u64;
    let mut prefill_prompts: Vec<u64> = Vec::new();
    let mut decode_ctxs: Vec<u64> = Vec::new();
    for a in running {
        // KV bytes this request holds by the end of the iteration: the
        // full prompt for a prefill, one more token for a decode.
        let needed = if a.generated == 0 {
            a.prompt_tokens * kv.bytes_per_token
        } else {
            (a.context() + 1) * kv.bytes_per_token
        };
        let force = protected.is_empty();
        let Some(out) = pool.reserve(a.id, needed, &protected, force) else {
            continue; // skipped this iteration: its KV stays (or goes) cold
        };
        protected.insert(a.id);
        in_flight.push(a.id);
        fetched += out.fetched_bytes;
        offloaded += out.offloaded_bytes;
        if a.generated == 0 {
            prefill_prompts.push(a.prompt_tokens);
        } else {
            decode_ctxs.push(a.context());
        }
    }

    // One fused kernel per iteration (continuous batching launches the
    // whole transformer stack once over the mixed batch).
    let layer = iteration_layer(model, &prefill_prompts, &decode_ctxs);
    let npu = engine.run(&[layer]).total;

    // KV migration: fetches and offloads each cross the CPU↔NPU link
    // once under the profile's protocol.
    let kv_time =
        profile.kv_protocol.transfer_time(fetched) + profile.kv_protocol.transfer_time(offloaded);
    let kv_exposed = if profile.kv_protocol.can_overlap_compute() {
        exposed_time(npu, kv_time)
    } else {
        kv_time
    };

    report.iterations += 1;
    report.npu_time += npu;
    report.kv_transfer_time += kv_time;
    report.kv_exposed_time += kv_exposed;
    if probe.enabled() {
        let name = match (prefill_prompts.is_empty(), decode_ctxs.is_empty()) {
            (false, true) => "prefill",
            (true, false) => "decode",
            _ => "mixed",
        };
        probe.span("NPU", name, now, now + npu);
        probe.count("serve.iterations", 1);
        if kv_time > Time::ZERO {
            probe.span("link", "kv_transfer", now, now + kv_time);
            probe.count("serve.kv_exposed_ps", kv_exposed.as_ps());
        }
        if fetched > 0 {
            probe.instant("CPU", "kv_fetch", now);
            probe.count("serve.kv_fetch_bytes", fetched);
        }
        if offloaded > 0 {
            probe.instant("CPU", "kv_offload", now);
            probe.count("serve.kv_offload_bytes", offloaded);
        }
    }
    Some(npu + kv_exposed)
}

/// Applies the effects of a finished iteration at time `now`.
fn finish_iteration(
    now: Time,
    in_flight: &[u32],
    running: &mut Vec<Active>,
    pool: &mut KvPool,
    report: &mut ServeReport,
) {
    for &id in in_flight {
        let a = running
            .iter_mut()
            .find(|a| a.id == id)
            .expect("scheduled request is active");
        if a.generated == 0 {
            a.first_token_at = Some(now);
            report
                .ttft_ns
                .record((now - a.arrival).as_ns_f64().round() as u64);
        }
        a.generated += 1;
    }
    running.retain(|a| {
        if a.generated < a.target_tokens {
            return true;
        }
        report.completed_requests += 1;
        report.output_tokens += a.target_tokens;
        report.makespan = report.makespan.max(now);
        report
            .latency_ns
            .record((now - a.arrival).as_ns_f64().round() as u64);
        if a.target_tokens > 1 {
            let first = a.first_token_at.expect("completed request prefilled");
            let per_token = (now - first).as_ns_f64() / (a.target_tokens - 1) as f64;
            report.tpot_ns.record(per_token.round() as u64);
        }
        pool.release(a.id);
        false
    });
}

/// The fused NPU kernel of one iteration: one GEMM-shaped prompt pass
/// per length in `prefill_prompts` plus one GEMV-shaped decode step for
/// every context in `decode_ctxs`, across all `model.layers` transformer
/// layers.
///
/// Weights stream once; decode attention streams each request's cached
/// KV (memory-bound — the AMLA analysis shows decode attention is
/// dominated by rescaling/streaming, not multiplies) and appends one
/// token of KV per request.
fn iteration_layer(model: &ModelConfig, prefill_prompts: &[u64], decode_ctxs: &[u64]) -> Layer {
    let h = model.hidden;
    let layers = model.layers;
    let weight_bytes = 12 * h * h * FP16 * layers;
    let r = decode_ctxs.len() as u64;
    let ctx_sum: u64 = decode_ctxs.iter().sum();
    let p: u64 = prefill_prompts.iter().sum();

    // GEMV projections per decode + quadratic prompt GEMMs per prefill;
    // attention adds 2·H MACs per cached/prompt token (QKᵀ and AV) plus
    // the per-score rescaling additions, absorbed into the same term.
    // Each request's prompt attends only within itself, so the quadratic
    // term is per-request — batching prefills must not cross-multiply
    // independent prompts.
    let prefill_attn: u64 = prefill_prompts.iter().map(|&pi| pi * pi * 2 * h).sum();
    let macs =
        layers * (r * 12 * h * h + ctx_sum * 2 * h) + layers * (p * 12 * h * h + prefill_attn);
    // Streams in: decode KV reads + per-layer hidden states; prefill
    // token activations.
    let in_bytes =
        ctx_sum * kv_bytes_per_layer(h) * layers + r * h * FP16 * layers + p * h * FP16 * layers;
    // Streams out: hidden states plus the KV append (one token per
    // decode, the whole prompt per prefill).
    let out_bytes = (r + p) * h * FP16 * layers + (r + p) * kv_bytes_per_layer(h) * layers;
    Layer {
        macs: macs.max(1),
        in_bytes,
        w_bytes: weight_bytes,
        out_bytes,
    }
}

fn kv_bytes_per_layer(hidden: u64) -> u64 {
    2 * hidden * FP16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;
    use tee_workloads::zoo::by_name;

    fn small_cfg(model: &ModelConfig) -> ServeConfig {
        ServeConfig::for_model(model, 4, 640)
    }

    fn small_trace() -> Vec<Request> {
        TraceConfig::poisson(12, 16.0, 42).generate()
    }

    #[test]
    fn every_request_completes_and_metrics_fill() {
        let model = by_name("GPT").unwrap();
        let cfg = small_cfg(&model);
        let r = simulate(&cfg, &model, &SecurityProfile::tensor_tee(), &small_trace());
        assert_eq!(r.completed_requests, r.total_requests);
        assert_eq!(r.ttft_ns.count(), u64::from(r.total_requests));
        assert_eq!(r.latency_ns.count(), u64::from(r.total_requests));
        assert!(r.output_tokens > 0);
        assert!(r.goodput_tps() > 0.0);
        assert!(r.iterations > 0);
        assert!(r.npu_time > Time::ZERO);
        assert!(r.makespan > Time::ZERO);
    }

    #[test]
    fn simulation_is_deterministic() {
        let model = by_name("GPT").unwrap();
        let cfg = small_cfg(&model);
        let trace = small_trace();
        let a = simulate(&cfg, &model, &SecurityProfile::sgx_mgx(), &trace);
        let b = simulate(&cfg, &model, &SecurityProfile::sgx_mgx(), &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn kv_pressure_triggers_offload_and_staging_exposes_it() {
        let model = by_name("GPT").unwrap();
        // A budget holding barely one request forces migration.
        let kv = KvSpec::of(&model);
        let cfg = small_cfg(&model).with_kv_hbm_bytes(kv.bytes_per_token * 800);
        let trace = small_trace();
        let staged = simulate(&cfg, &model, &SecurityProfile::sgx_mgx(), &trace);
        let direct = simulate(&cfg, &model, &SecurityProfile::tensor_tee(), &trace);
        assert!(staged.kv_stats.get("offloads") > 0, "{}", staged.kv_stats);
        assert!(staged.kv_transfer_time > Time::ZERO);
        assert!(
            staged.kv_exposed_time > direct.kv_exposed_time,
            "staging serializes KV migration: {} vs {}",
            staged.kv_exposed_time,
            direct.kv_exposed_time
        );
        assert!(direct.goodput_tps() > staged.goodput_tps());
    }

    #[test]
    fn ample_hbm_means_no_migration() {
        let model = by_name("GPT").unwrap();
        let cfg = small_cfg(&model).with_kv_hbm_bytes(u64::MAX / 2);
        let r = simulate(&cfg, &model, &SecurityProfile::non_secure(), &small_trace());
        assert_eq!(r.kv_stats.get("offloads"), 0);
        assert_eq!(r.kv_transfer_time, Time::ZERO);
        assert_eq!(r.kv_exposed_time, Time::ZERO);
    }

    #[test]
    fn batching_beats_serial_decode() {
        // The fused iteration streams weights once for the whole batch, so
        // decoding 8 contexts costs far less than 8× one context.
        let model = by_name("GPT2-M").unwrap();
        let one = iteration_layer(&model, &[], &[256]);
        let eight = iteration_layer(&model, &[], &[256; 8]);
        assert_eq!(one.w_bytes, eight.w_bytes);
        assert!(eight.in_bytes < 8 * (one.in_bytes + one.w_bytes));
    }

    #[test]
    fn prefill_attention_is_per_request_quadratic() {
        // Two 512-token prompts must cost two 512² attention terms, not
        // one 1024² term — independent requests never attend to each
        // other.
        let model = by_name("GPT2-M").unwrap();
        let split = iteration_layer(&model, &[512, 512], &[]);
        let fused = iteration_layer(&model, &[1024], &[]);
        assert!(split.macs < fused.macs);
        let h = model.hidden;
        assert_eq!(
            (fused.macs - split.macs),
            model.layers * (1024 * 1024 - 2 * 512 * 512) * 2 * h
        );
        // Linear terms (projections, streams) are token-count-shaped and
        // identical either way.
        assert_eq!(split.in_bytes, fused.in_bytes);
        assert_eq!(split.out_bytes, fused.out_bytes);
    }

    #[test]
    fn bursty_co_arrivals_join_one_prefill_iteration() {
        // All members of a same-timestamp burst are admitted before the
        // first iteration launches, so their TTFTs tie instead of
        // serializing one prefill iteration apart.
        let model = by_name("GPT").unwrap();
        let cfg = small_cfg(&model);
        let trace = TraceConfig::bursty(4, 8.0, 4, 3).generate();
        assert!(trace.iter().all(|r| r.arrival == trace[0].arrival));
        let r = simulate(&cfg, &model, &SecurityProfile::non_secure(), &trace);
        assert_eq!(r.ttft_ns.count(), 4);
        assert_eq!(
            r.ttft_ns.min(),
            r.ttft_ns.max(),
            "co-arriving prompts prefill together"
        );
    }

    #[test]
    fn probed_run_matches_unprobed_and_records_kv_traffic() {
        let model = by_name("GPT").unwrap();
        let kv = KvSpec::of(&model);
        // Tight HBM forces KV spill/fetch so the probe sees migrations.
        let cfg = small_cfg(&model).with_kv_hbm_bytes(kv.bytes_per_token * 800);
        let trace = small_trace();
        let profile = SecurityProfile::sgx_mgx();
        let plain = simulate(&cfg, &model, &profile, &trace);
        let recorder = SharedProbe::recording();
        let probed = simulate_probed(&cfg, &model, &profile, &trace, &recorder);
        assert_eq!(plain, probed, "probing must not change the report");
        let snap = recorder.snapshot().expect("recording");
        assert_eq!(snap.metrics().get("serve.iterations"), plain.iterations);
        assert!(snap.metrics().get("serve.kv_offload_bytes") > 0);
        for track in ["NPU", "link", "CPU"] {
            assert!(
                snap.events().iter().any(|e| e.track() == track),
                "missing track {track}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn zero_batch_rejected() {
        let model = by_name("GPT").unwrap();
        let cfg = ServeConfig {
            max_batch: 0,
            ..small_cfg(&model)
        };
        simulate(&cfg, &model, &SecurityProfile::non_secure(), &[]);
    }
}
