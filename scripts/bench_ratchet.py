#!/usr/bin/env python3
"""Perf ratchet: compare a fresh `tensortee bench --json` run against the
committed BENCH_<rev>.json baseline.

Usage: bench_ratchet.py BASELINE FRESH [--tolerance 0.25]

Policy (documented in EXPERIMENTS.md, "Perf trajectory"):

* the two files must share the schema tag and the measurement profile
  (fast/full) — otherwise the comparison is meaningless and the ratchet
  fails;
* every artifact and sweep present in the baseline must be present in
  the fresh run (an artifact disappearing is a regression in coverage);
* a fresh median above ``baseline * (1 + tolerance) + slack_ms`` fails
  the ratchet (default: +25% and 5 ms). The absolute slack term keeps
  sub-millisecond artifacts — whose medians are mostly timer jitter —
  from tripping the relative band;
* entries only in the fresh run (new artifacts) pass — they enter the
  ratchet when the baseline is next refreshed;
* a fresh median below ``baseline * (1 - tolerance) - slack_ms`` is
  reported as a hint to re-baseline (lock in the win), but passes.

Exit status: 0 = within the band, 1 = regression (or incomparable files).
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "artifacts" not in doc or "sweeps" not in doc:
        sys.exit(f"{path}: not a tensortee bench trajectory")
    return doc


def compare(kind, key, base_entries, fresh_entries, field, tolerance, slack_ms):
    """Yields (failure, message) per baseline entry of one section."""
    fresh_by_key = {e[key]: e for e in fresh_entries}
    for entry in base_entries:
        name = entry[key]
        fresh = fresh_by_key.get(name)
        if fresh is None:
            yield True, f"{kind} {name}: missing from the fresh run"
            continue
        base_v, fresh_v = entry[field], fresh[field]
        delta = (fresh_v / base_v - 1.0) * 100 if base_v > 0.0 else float("inf")
        line = f"{kind} {name}: {base_v:.2f} -> {fresh_v:.2f} ms ({delta:+.0f}%)"
        if fresh_v > base_v * (1.0 + tolerance) + slack_ms:
            yield True, f"REGRESSION {line}"
        elif fresh_v < base_v * (1.0 - tolerance) - slack_ms:
            yield False, f"improved   {line} — consider re-baselining"
        else:
            yield False, f"ok         {line}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_<rev>.json")
    parser.add_argument("fresh", help="output of `tensortee bench --json`")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--slack-ms",
        type=float,
        default=5.0,
        help="absolute slowdown always tolerated, in ms (default 5.0; "
        "keeps sub-ms timer jitter out of the relative band)",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    for field in ("schema", "profile"):
        if base.get(field) != fresh.get(field):
            failures.append(
                f"{field} mismatch: baseline {base.get(field)!r} vs fresh "
                f"{fresh.get(field)!r} — runs are not comparable"
            )
    if not failures:
        checks = list(
            compare(
                "artifact", "id", base["artifacts"], fresh["artifacts"],
                "median_ms", args.tolerance, args.slack_ms,
            )
        ) + list(
            compare(
                "sweep", "scenario", base["sweeps"], fresh["sweeps"],
                "median_ms", args.tolerance, args.slack_ms,
            )
        ) + list(
            # The event-queue microbench section (absent from baselines
            # written before it existed — new entries enter the ratchet
            # at the next re-baseline, same as new artifacts).
            compare(
                "queue", "queue", base.get("queues", []), fresh.get("queues", []),
                "median_ms", args.tolerance, args.slack_ms,
            )
        ) + list(
            # The probe-overhead microbench: the "null" row ratchets the
            # zero-overhead-when-off claim for the observability layer.
            compare(
                "probe", "probe", base.get("probes", []), fresh.get("probes", []),
                "median_ms", args.tolerance, args.slack_ms,
            )
        ) + list(
            # The adversary-analysis microbench: tee-attack stages on a
            # fixed recorded trace.
            compare(
                "attack", "stage", base.get("attacks", []), fresh.get("attacks", []),
                "median_ms", args.tolerance, args.slack_ms,
            )
        )
        for failed, message in checks:
            print(message)
            if failed:
                failures.append(message)

    print()
    if failures:
        print(f"ratchet FAILED ({len(failures)} issue(s); tolerance +{args.tolerance:.0%}):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"ratchet OK: {len(base['artifacts'])} artifacts + {len(base['sweeps'])} sweeps "
        f"+ {len(base.get('queues', []))} queues + {len(base.get('probes', []))} probes "
        f"+ {len(base.get('attacks', []))} attack stages "
        f"within +{args.tolerance:.0%} of {base.get('rev', '?')}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
