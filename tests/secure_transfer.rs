//! End-to-end direct-transfer integration tests (§4.4): attestation →
//! key exchange → trusted-channel metadata + direct-channel ciphertext →
//! verification on the receiving enclave, plus in-flight attacks.

use tee_comm::channel::{DirectChannel, TransferMeta};
use tee_crypto::Key;
use tee_npu::memory::NpuMemory;
use tensortee::SecureSession;

const DEVICE_SEED: u64 = 0x5EC0;

fn session() -> SecureSession {
    SecureSession::establish(Key::from_seed(DEVICE_SEED), b"cpu image", b"npu image", 99)
        .expect("genuine enclaves attest")
}

/// Transfers a tensor enclave-to-enclave through both channels, as the
/// protocol does, returning what the receiver reconstructs.
fn transfer_round_trip(
    data: &[u8],
    tamper: impl FnOnce(&mut Vec<[u8; 64]>),
) -> Result<Vec<u8>, String> {
    let s = session();
    // Sender (CPU-side enclave memory modeled with the same unified
    // tensor-granularity store — that is the point of unification).
    let mut sender = NpuMemory::new(s.key());
    sender.write_tensor(0x4000, data);
    let (meta, mut lines) = sender.export_ciphertext(0x4000);

    // Trusted channel: metadata sealed under the session key.
    let sealed = s.cpu_channel().seal(
        &TransferMeta {
            base: meta.base,
            bytes: meta.bytes,
            vn: meta.vn,
            mac: meta.mac,
        },
        0,
    );

    // Direct channel: ciphertext DMA (attacker may interfere here).
    tamper(&mut lines);
    let mut dma = DirectChannel::new();
    let delivered = dma.dma(&lines);

    // Receiver: open metadata, import, verify.
    let opened = s
        .npu_channel()
        .open(&sealed, 0)
        .map_err(|e| e.to_string())?;
    let mut receiver = NpuMemory::new(s.key());
    receiver.import_ciphertext(
        tee_npu::TensorMeta {
            base: opened.base,
            bytes: opened.bytes,
            vn: opened.vn,
            mac: opened.mac,
        },
        &delivered,
    );
    receiver.read_tensor(opened.base).map_err(|e| e.to_string())
}

#[test]
fn clean_transfer_verifies_without_reencryption() {
    let data: Vec<u8> = (0..2048u32).map(|i| (i * 31) as u8).collect();
    let received = transfer_round_trip(&data, |_| {}).expect("clean transfer verifies");
    assert_eq!(received, data);
}

#[test]
fn in_flight_tamper_detected_at_receiver() {
    let data = vec![7u8; 1024];
    let result = transfer_round_trip(&data, |lines| {
        lines[3][10] ^= 0x04;
    });
    assert!(
        result.is_err(),
        "tampered DMA payload must fail the tensor MAC"
    );
}

#[test]
fn reordered_lines_detected_at_receiver() {
    let data: Vec<u8> = (0..1024u32).map(|i| i as u8).collect();
    let result = transfer_round_trip(&data, |lines| {
        lines.swap(0, 5);
    });
    assert!(result.is_err(), "line reordering changes PA-bound MACs");
}

#[test]
fn dropped_tail_detected_at_receiver() {
    let data = vec![9u8; 1024];
    let result = transfer_round_trip(&data, |lines| {
        lines.truncate(lines.len() - 1);
    });
    assert!(result.is_err(), "truncated tensor must fail verification");
}

#[test]
fn bus_snoop_learns_only_ciphertext() {
    let s = session();
    let secret = vec![0x5Au8; 512];
    let mut sender = NpuMemory::new(s.key());
    sender.write_tensor(0x8000, &secret);
    let (_, lines) = sender.export_ciphertext(0x8000);
    let mut dma = DirectChannel::new();
    dma.dma(&lines);
    for line in dma.snooped() {
        assert_ne!(
            &line[..],
            &secret[..64],
            "plaintext must never cross the bus"
        );
    }
}

#[test]
fn different_sessions_cannot_decrypt_each_other() {
    let s1 = session();
    let s2 = SecureSession::establish(
        Key::from_seed(DEVICE_SEED + 1),
        b"cpu image",
        b"npu image",
        99,
    )
    .expect("attests");
    assert_ne!(s1.key(), s2.key());
    let mut sender = NpuMemory::new(s1.key());
    sender.write_tensor(0, &[1u8; 128]);
    let (meta, lines) = sender.export_ciphertext(0);
    let mut wrong_receiver = NpuMemory::new(s2.key());
    wrong_receiver.import_ciphertext(meta, &lines);
    assert!(wrong_receiver.read_tensor(0).is_err());
}
