//! CPU-side TEE security integration tests: physical attacks on the
//! simulated DRAM while the functional engine runs real workloads.

use tee_cpu::analyzer::TenAnalyzerConfig;
use tee_cpu::{AdamWorkload, CpuConfig, CpuEngine, IntegrityError, TeeMode};

fn functional_cfg() -> CpuConfig {
    let mut cfg = CpuConfig::default();
    cfg.hierarchy.l1.size_bytes = 2 << 10;
    cfg.hierarchy.l2.size_bytes = 4 << 10;
    cfg.hierarchy.l3.size_bytes = 16 << 10;
    cfg.protected_lines = 1 << 14;
    cfg.functional_crypto = true;
    cfg
}

#[test]
fn sgx_mode_detects_midrun_tamper() {
    let w = AdamWorkload::synthetic(1, 8 << 10);
    let mut engine = CpuEngine::new(functional_cfg(), TeeMode::Sgx);
    // One clean iteration materializes ciphertext.
    let rep = engine.run_adam(&w, 2, 1);
    assert_eq!(rep.integrity_errors, 0);
    // Flip a byte in the middle of the weight region's ciphertext.
    let victim_pa = {
        let addrs = engine.mem_mut().resident_addrs();
        addrs[addrs.len() / 2]
    };
    engine.mem_mut().tamper_byte(victim_pa, 9, 0xFF);
    let rep = engine.run_adam(&w, 2, 1);
    assert!(
        rep.integrity_errors > 0,
        "tampered line must fail MAC on re-read"
    );
    assert!(matches!(
        engine.last_integrity_error(),
        Some(IntegrityError::MacMismatch { .. })
    ));
}

#[test]
fn tensortee_mode_detects_midrun_tamper() {
    let w = AdamWorkload::synthetic(1, 8 << 10);
    let mut engine = CpuEngine::new(
        functional_cfg(),
        TeeMode::TensorTee(TenAnalyzerConfig::default()),
    );
    let rep = engine.run_adam(&w, 2, 2);
    assert_eq!(
        rep.integrity_errors,
        0,
        "{:?}",
        engine.last_integrity_error()
    );
    let victim_pa = {
        let addrs = engine.mem_mut().resident_addrs();
        addrs[addrs.len() / 2]
    };
    engine.mem_mut().tamper_byte(victim_pa, 0, 0x80);
    let rep = engine.run_adam(&w, 2, 1);
    assert!(
        rep.integrity_errors > 0,
        "tensor-granularity TEE still verifies"
    );
}

#[test]
fn long_functional_run_stays_consistent() {
    // Six iterations with detection, merging, round closure and flushes:
    // every decrypted line must verify against its live VN.
    let w = AdamWorkload::synthetic(3, 4 << 10);
    let mut engine = CpuEngine::new(
        functional_cfg(),
        TeeMode::TensorTee(TenAnalyzerConfig::default()),
    );
    let rep = engine.run_adam(&w, 4, 6);
    assert_eq!(
        rep.integrity_errors,
        0,
        "VN bookkeeping diverged: {:?}",
        engine.last_integrity_error()
    );
    // Detection really happened.
    let analyzer = engine.analyzer().expect("tensortee mode");
    assert!(!analyzer.table().is_empty());
    let last = rep.iterations.last().unwrap();
    assert!(
        last.hit_in_rate() > 0.5,
        "steady-state hits: {}",
        last.hit_in_rate()
    );
}

#[test]
fn non_secure_mode_has_no_crypto_protection() {
    // Sanity contrast: without TEE the tamper goes unnoticed (and data is
    // plaintext at rest) — the reason the paper needs a TEE at all.
    let w = AdamWorkload::synthetic(1, 4 << 10);
    let mut cfg = functional_cfg();
    cfg.functional_crypto = false;
    let mut engine = CpuEngine::new(cfg, TeeMode::NonSecure);
    let rep = engine.run_adam(&w, 1, 1);
    assert_eq!(rep.integrity_errors, 0);
    engine.mem_mut().tamper_byte(0, 0, 0xFF);
    let rep = engine.run_adam(&w, 1, 1);
    assert_eq!(rep.integrity_errors, 0, "no protection, no detection");
}
