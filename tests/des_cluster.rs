//! Differential suite: the discrete-event cluster engine against the
//! analytic [`ClusterSystem`] oracle.
//!
//! The load-bearing invariants:
//!
//! * **bit-for-bit parity** — a lockstep data-parallel DES run produces
//!   the *identical* [`ClusterStepBreakdown`] (every field, exact
//!   picoseconds) for every cluster size in {1, 2, 4, 8}, every security
//!   mode, and both the fast and the full (Table-1) configuration. The
//!   analytic path stays the correctness oracle; any divergence is a DES
//!   bug, not model noise.
//! * **straggler 1.0 is homogeneous** — the skew knob at its identity
//!   value changes nothing, bit-for-bit.
//! * **determinism** — repeat DES runs, repeat artifact reports and the
//!   explore `des` scenario across worker-thread counts are all
//!   byte-identical (the float-masking check mirrors
//!   `tests/bench_trajectory.rs`: masking every JSON float must be a
//!   no-op on already-identical bytes).

use tee_sim::Time;
use tee_workloads::zoo::by_name;
use tee_workloads::StepSchedule;
use tensortee::artifact::{find, RunContext};
use tensortee::json::Json;
use tensortee::{
    ClusterConfig, ClusterSystem, DesClusterConfig, DesClusterSystem, Parallelism, SecureMode,
    SystemConfig, TrainingSystem,
};

/// Synthetic CPU Adam phases (the cacheline CPU simulation is the slow
/// part of a step; parity must hold for *any* supplied value, so the
/// sweep uses several spread over three orders of magnitude).
const CPU_TIMES: [Time; 3] = [Time::from_us(80), Time::from_ms(25), Time::from_ms(400)];

fn configs() -> [(&'static str, SystemConfig); 2] {
    [
        ("fast", SystemConfig::fast_sim()),
        ("full", SystemConfig::default()),
    ]
}

#[test]
fn lockstep_des_matches_analytic_bit_for_bit_everywhere() {
    let model = by_name("GPT").unwrap();
    let schedule = StepSchedule::of(&model);
    for (cfg_label, cfg) in configs() {
        for n in [1u32, 2, 4, 8] {
            for mode in SecureMode::all() {
                for cpu in CPU_TIMES {
                    let analytic = ClusterSystem::new(cfg.clone(), ClusterConfig::of(n), mode)
                        .simulate_with_cpu_time(&schedule, cpu);
                    let des = DesClusterSystem::new(
                        cfg.clone(),
                        DesClusterConfig::lockstep(ClusterConfig::of(n)),
                        mode,
                    )
                    .simulate_with_cpu_time(&schedule, cpu);
                    let label = format!("{cfg_label} N={n} {} cpu={cpu}", mode.label());
                    assert_eq!(des.breakdown, analytic, "{label}");
                    assert_eq!(des.makespan, analytic.total(), "{label}");
                    // An uncontended replay: the fabric never queues.
                    assert_eq!(des.fabric_contention, Time::ZERO, "{label}");
                }
            }
        }
    }
}

#[test]
fn larger_model_parity_holds_on_the_full_config() {
    // A second model with a different layer mix, gradient footprint and
    // overlap geometry — parity is a property of the engine, not of one
    // schedule's numbers.
    let model = by_name("GPT2-M").unwrap();
    let schedule = StepSchedule::of(&model);
    let cpu = Time::from_ms(120);
    for n in [2u32, 8] {
        for mode in SecureMode::all() {
            let analytic = ClusterSystem::new(SystemConfig::default(), ClusterConfig::of(n), mode)
                .simulate_with_cpu_time(&schedule, cpu);
            let des = DesClusterSystem::new(
                SystemConfig::default(),
                DesClusterConfig::lockstep(ClusterConfig::of(n)),
                mode,
            )
            .simulate_with_cpu_time(&schedule, cpu);
            assert_eq!(des.breakdown, analytic, "N={n} {}", mode.label());
        }
    }
}

#[test]
fn real_cpu_path_stays_in_parity_under_the_fast_config() {
    // One end-to-end case where both paths price the CPU phase
    // themselves (`simulate_schedule`), pinning the plumbing around the
    // supplied-cpu shortcut.
    let model = by_name("GPT").unwrap();
    let schedule = StepSchedule::of(&model);
    let mode = SecureMode::TensorTee;
    let analytic = ClusterSystem::new(SystemConfig::fast_sim(), ClusterConfig::of(4), mode)
        .simulate_schedule(&schedule);
    let des = DesClusterSystem::new(
        SystemConfig::fast_sim(),
        DesClusterConfig::lockstep(ClusterConfig::of(4)),
        mode,
    )
    .simulate_schedule(&schedule);
    assert_eq!(des.breakdown, analytic);
}

#[test]
fn straggler_identity_factor_is_bit_for_bit_homogeneous() {
    let model = by_name("GPT").unwrap();
    let schedule = StepSchedule::of(&model);
    let cpu = Time::from_ms(25);
    for mode in SecureMode::all() {
        for parallelism in [Parallelism::Data, Parallelism::Pipeline { microbatches: 4 }] {
            let run = |factor: f64| {
                DesClusterSystem::new(
                    SystemConfig::fast_sim(),
                    DesClusterConfig {
                        cluster: ClusterConfig::of(4),
                        straggler_factor: factor,
                        parallelism,
                    },
                    mode,
                )
                .simulate_with_cpu_time(&schedule, cpu)
            };
            assert_eq!(run(1.0), run(1.0), "{} repeat", mode.label());
            // factor 1.0 goes through the exact (unscaled) path: the
            // entire report matches the lockstep default bit-for-bit.
            let lockstep = DesClusterSystem::new(
                SystemConfig::fast_sim(),
                match parallelism {
                    Parallelism::Data => DesClusterConfig::lockstep(ClusterConfig::of(4)),
                    Parallelism::Pipeline { microbatches } => {
                        DesClusterConfig::lockstep(ClusterConfig::of(4)).with_pipeline(microbatches)
                    }
                },
                mode,
            )
            .simulate_with_cpu_time(&schedule, cpu);
            assert_eq!(run(1.0), lockstep, "{}", mode.label());
        }
    }
}

#[test]
fn straggler_skew_only_ever_slows_the_step() {
    let model = by_name("GPT").unwrap();
    let schedule = StepSchedule::of(&model);
    let cpu = Time::from_ms(25);
    for mode in SecureMode::all() {
        let mut prev = Time::ZERO;
        for factor in [1.0, 1.1, 1.25, 1.5] {
            let report = DesClusterSystem::new(
                SystemConfig::fast_sim(),
                DesClusterConfig::lockstep(ClusterConfig::of(4)).with_straggler(factor),
                mode,
            )
            .simulate_with_cpu_time(&schedule, cpu);
            assert!(
                report.makespan >= prev,
                "{} {factor}: {} < {prev}",
                mode.label(),
                report.makespan
            );
            assert_eq!(report.makespan, report.breakdown.total(), "partition");
            prev = report.makespan;
        }
    }
}

#[test]
fn pipeline_microbatches_shrink_the_compute_front() {
    // GPipe shape: more microbatches -> smaller fill/drain bubble ->
    // earlier last-stage drain; and the boundary traffic contends on the
    // shared fabric under the staging protocol.
    let model = by_name("GPT").unwrap();
    let schedule = StepSchedule::of(&model);
    let cpu = Time::from_ms(25);
    let run = |m: u32, mode: SecureMode| {
        DesClusterSystem::new(
            SystemConfig::fast_sim(),
            DesClusterConfig::lockstep(ClusterConfig::of(4)).with_pipeline(m),
            mode,
        )
        .simulate_with_cpu_time(&schedule, cpu)
    };
    for mode in SecureMode::all() {
        let few = run(2, mode);
        let many = run(16, mode);
        assert!(
            many.breakdown.npu <= few.breakdown.npu,
            "{}: {} > {}",
            mode.label(),
            many.breakdown.npu,
            few.breakdown.npu
        );
        assert_eq!(few.breakdown.comm_ar, Time::ZERO, "no collective");
        assert_eq!(few.makespan, few.breakdown.total());
    }
    // Staging pays a conversion on every boundary hop; direct does not.
    assert!(run(8, SecureMode::SgxMgx).crypto > run(8, SecureMode::TensorTee).crypto);
}

/// Replaces every float in `json` with 0.0, leaving structure, strings
/// and integers untouched (the bench-trajectory masking trick).
fn mask_floats(json: Json) -> Json {
    match json {
        Json::Float(_) => Json::Float(0.0),
        Json::Array(items) => Json::Array(items.into_iter().map(mask_floats).collect()),
        Json::Object(fields) => Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k, mask_floats(v)))
                .collect(),
        ),
        other => other,
    }
}

#[test]
fn des_artifacts_are_byte_identical_across_invocations() {
    let ctx = RunContext::fast();
    for id in ["des_parity", "des_straggler", "des_pipeline"] {
        let artifact = find(id).unwrap_or_else(|| panic!("{id} not registered"));
        let first = artifact.run(&ctx);
        let second = artifact.run(&ctx);
        // The DES is fully deterministic: raw bytes match, so masking
        // floats (the escape hatch wall-clock benches need) is a no-op.
        assert_eq!(
            first.to_json().to_string(),
            second.to_json().to_string(),
            "{id}: JSON differs between runs"
        );
        assert_eq!(
            mask_floats(first.to_json()).to_string(),
            mask_floats(second.to_json()).to_string(),
            "{id}: masked JSON differs between runs"
        );
        assert_eq!(first.to_markdown(), second.to_markdown(), "{id}");
    }
}

#[test]
fn des_parity_artifact_reports_zero_divergence() {
    let report = find("des_parity").unwrap().run(&RunContext::fast());
    assert_eq!(report.metric_value("max_divergence_ps"), Some(0.0));
    assert!(!report.to_markdown().contains("| NO |"), "a row diverged");
}

#[test]
fn event_counts_scale_with_cluster_size_and_are_stable() {
    // The event count is part of the deterministic surface: same config,
    // same count; more ranks, more events.
    let model = by_name("GPT").unwrap();
    let schedule = StepSchedule::of(&model);
    let cpu = Time::from_ms(25);
    let events = |n: u32| {
        DesClusterSystem::new(
            SystemConfig::fast_sim(),
            DesClusterConfig::lockstep(ClusterConfig::of(n)),
            SecureMode::TensorTee,
        )
        .simulate_with_cpu_time(&schedule, cpu)
        .events
    };
    assert_eq!(events(4), events(4));
    assert!(events(8) > events(2), "{} <= {}", events(8), events(2));
}

#[test]
fn des_system_exposes_its_configuration() {
    let des = DesClusterSystem::new(
        SystemConfig::fast_sim(),
        DesClusterConfig::lockstep(ClusterConfig::of(2))
            .with_straggler(1.25)
            .with_pipeline(3),
        SecureMode::SgxMgx,
    );
    assert_eq!(des.mode(), SecureMode::SgxMgx);
    assert_eq!(des.des_config().straggler_factor, 1.25);
    assert_eq!(
        des.des_config().parallelism,
        Parallelism::Pipeline { microbatches: 3 }
    );
    assert_eq!(des.des_config().parallelism.label(), "pipeline/3");
    assert_eq!(Parallelism::Data.label(), "data");
}

#[test]
fn supplied_and_self_priced_cpu_paths_agree() {
    // `simulate_schedule` must equal `simulate_with_cpu_time` fed the
    // same CPU phase — the seam the explorer and the tests lean on.
    let model = by_name("GPT").unwrap();
    let schedule = StepSchedule::of(&model);
    let mode = SecureMode::NonSecure;
    let replica = schedule.data_parallel_replica(2);
    let cpu = TrainingSystem::new(SystemConfig::fast_sim(), mode).cpu_time(&replica);
    let mut des = DesClusterSystem::new(
        SystemConfig::fast_sim(),
        DesClusterConfig::lockstep(ClusterConfig::of(2)),
        mode,
    );
    assert_eq!(
        des.simulate_schedule(&schedule),
        des.simulate_with_cpu_time(&schedule, cpu)
    );
}
