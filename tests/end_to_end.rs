//! End-to-end system integration: the headline claims of §6 must hold as
//! *shapes* on the composed simulator (exact factors depend on our
//! substrate; see EXPERIMENTS.md for the full artifact index).
//!
//! This suite covers the paper's single-NPU system; the multi-NPU
//! data-parallel extension (secure ring all-reduce, strong-scaling
//! shapes, and the N=1 ≡ single-system equivalence) lives in
//! `tests/multi_npu.rs`.

use tee_workloads::zoo::{by_name, TABLE2};
use tensortee::{SecureMode, SystemConfig, TrainingSystem};

fn cfg() -> SystemConfig {
    SystemConfig::fast_sim()
}

#[test]
fn headline_speedup_and_overhead() {
    // §6.1 on GPT2-M: TensorTEE ≫ SGX+MGX, and close to non-secure.
    let m = by_name("GPT2-M").unwrap();
    let ns = TrainingSystem::new(cfg(), SecureMode::NonSecure)
        .simulate_step(&m)
        .total();
    let base = TrainingSystem::new(cfg(), SecureMode::SgxMgx)
        .simulate_step(&m)
        .total();
    let ours = TrainingSystem::new(cfg(), SecureMode::TensorTee)
        .simulate_step(&m)
        .total();
    let speedup = base.as_secs_f64() / ours.as_secs_f64();
    let overhead = ours.as_secs_f64() / ns.as_secs_f64() - 1.0;
    assert!(speedup > 1.5, "speedup {speedup:.2}x");
    assert!(overhead < 0.20, "overhead {:.1}%", overhead * 100.0);
}

#[test]
fn speedup_trend_across_zoo() {
    // Figure 16's trend: larger models gain more (communication and CPU
    // phases grow relative to NPU compute).
    let small = by_name("GPT").unwrap();
    let large = by_name("XGLM-4.5B").unwrap();
    let speedup = |m| {
        let base = TrainingSystem::new(cfg(), SecureMode::SgxMgx)
            .simulate_step(&m)
            .total();
        let ours = TrainingSystem::new(cfg(), SecureMode::TensorTee)
            .simulate_step(&m)
            .total();
        base.as_secs_f64() / ours.as_secs_f64()
    };
    assert!(speedup(large) > speedup(small));
}

#[test]
fn comm_share_explodes_under_sgx_mgx() {
    // Figure 5: the communication share grows dramatically in the
    // baseline secure system and collapses again under TensorTEE.
    let m = by_name("GPT2-M").unwrap();
    let share = |mode| {
        let b = TrainingSystem::new(cfg(), mode).simulate_step(&m);
        let (_, _, w, g) = b.fractions();
        w + g
    };
    let ns = share(SecureMode::NonSecure);
    let base = share(SecureMode::SgxMgx);
    let ours = share(SecureMode::TensorTee);
    assert!(
        base > ns + 0.15,
        "baseline comm share: {base:.2} vs ns {ns:.2}"
    );
    assert!(
        ours <= ns + 0.05,
        "ours back to non-secure level: {ours:.2}"
    );
}

#[test]
fn every_table2_model_simulates() {
    // Smoke over the full zoo (cheap modes only — the NPU and comm phases
    // are analytic).
    for m in TABLE2 {
        let sys = TrainingSystem::new(cfg(), SecureMode::TensorTee);
        let schedule = tee_workloads::StepSchedule::of(&m);
        let npu = sys.npu_time(&schedule);
        assert!(npu > tee_sim::Time::ZERO, "{}", m.name);
        let comm = sys.comm_costs(&schedule);
        assert!(comm.grad.total() > tee_sim::Time::ZERO, "{}", m.name);
    }
}

#[test]
fn hardware_budget_matches_paper() {
    let hw = tensortee::HardwareBudget::default();
    let kb = hw.total_bytes() as f64 / 1024.0;
    assert!((22.0..26.0).contains(&kb), "{kb:.1} KB");
}
