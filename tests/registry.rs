//! Artifact-registry invariants: ids are unique and complete, every
//! artifact runs under the reduced (`--fast`) context, markdown is
//! non-empty, JSON is well-formed, and two runs of the same artifact are
//! byte-identical (the whole simulator is deterministic — the `tensortee`
//! CLI relies on it).

use tensortee::artifact::{find, registry, RunContext};
use tensortee::json::{is_well_formed, Json};

#[test]
fn ids_unique_and_registry_complete() {
    let ids: Vec<&str> = registry().iter().map(|a| a.id).collect();
    assert!(ids.len() >= 28, "registry shrank: {ids:?}");
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate artifact ids: {ids:?}");
    for a in registry() {
        let found = find(a.id).expect("find() round-trips every id");
        assert_eq!(found.id, a.id);
        assert!(!a.title.is_empty() && !a.paper_anchor.is_empty() && !a.claim.is_empty());
    }
}

#[test]
fn run_all_json_array_is_well_formed() {
    // The `tensortee run --all --fast --json` shape: an array with one
    // object per registered artifact (uses the two cheap, pure-arithmetic
    // artifacts to keep this test about the *array* shape).
    let ctx = RunContext::fast();
    let reports: Vec<Json> = ["tab2", "sec65"]
        .iter()
        .map(|id| find(id).unwrap().run(&ctx).to_json())
        .collect();
    let array = Json::Array(reports).to_string();
    assert!(is_well_formed(&array), "{array}");
    assert!(array.starts_with('[') && array.ends_with(']'));
}

/// Runs `id` twice under the fast context and checks the shared
/// invariants: non-empty markdown carrying the artifact title, well-formed
/// JSON carrying the id, and byte-identical repeat runs.
fn assert_artifact_invariants(id: &str) {
    let ctx = RunContext::fast();
    let artifact = find(id).unwrap_or_else(|| panic!("{id} not registered"));
    let first = artifact.run(&ctx);
    let second = artifact.run(&ctx);

    let md = first.to_markdown();
    assert!(!md.trim().is_empty(), "{id}: empty markdown");
    assert!(
        md.contains(artifact.title),
        "{id}: title missing from\n{md}"
    );
    assert_eq!(
        md,
        second.to_markdown(),
        "{id}: markdown differs between runs"
    );

    let json = first.to_json().to_string();
    assert!(is_well_formed(&json), "{id}: malformed JSON\n{json}");
    assert!(json.contains(&format!("\"id\":\"{id}\"")), "{id}: {json}");
    assert_eq!(
        json,
        second.to_json().to_string(),
        "{id}: JSON differs between runs"
    );
}

// One test per artifact so `cargo test` parallelizes the expensive
// CPU-engine runs across cores.
macro_rules! artifact_invariants {
    ($($test:ident => $id:literal,)*) => {$(
        #[test]
        fn $test() {
            assert_artifact_invariants($id);
        }
    )*}
}

artifact_invariants! {
    fig03_fast_and_deterministic => "fig03",
    fig04_fast_and_deterministic => "fig04",
    fig05_fast_and_deterministic => "fig05",
    fig15_fast_and_deterministic => "fig15",
    fig16_fast_and_deterministic => "fig16",
    fig17_fast_and_deterministic => "fig17",
    fig18_fast_and_deterministic => "fig18",
    fig19_fast_and_deterministic => "fig19",
    fig20_fast_and_deterministic => "fig20",
    fig21_fast_and_deterministic => "fig21",
    tab2_fast_and_deterministic => "tab2",
    sec62_fast_and_deterministic => "sec62",
    sec65_fast_and_deterministic => "sec65",
    scaling_strong_fast_and_deterministic => "scaling_strong",
    des_parity_fast_and_deterministic => "des_parity",
    des_straggler_fast_and_deterministic => "des_straggler",
    des_pipeline_fast_and_deterministic => "des_pipeline",
    ablations_fast_and_deterministic => "ablations",
    serve_latency_fast_and_deterministic => "serve_latency",
    serve_sweep_fast_and_deterministic => "serve_sweep",
    fleet_latency_fast_and_deterministic => "fleet_latency",
    fleet_handoff_fast_and_deterministic => "fleet_handoff",
    explore_pareto_fast_and_deterministic => "explore_pareto",
    explore_sensitivity_fast_and_deterministic => "explore_sensitivity",
    attack_traffic_fast_and_deterministic => "attack_traffic",
    attack_kv_residency_fast_and_deterministic => "attack_kv_residency",
    attack_defended_fast_and_deterministic => "attack_defended",
}
