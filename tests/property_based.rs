//! Property-based tests (proptest) over the core data structures and
//! cryptographic invariants of the reproduction.

use proptest::collection::vec;
use proptest::prelude::*;
use tee_cpu::analyzer::meta_table::{MetaEntry, MetaTable, ReadLookup};
use tee_cpu::tensor::TensorDesc;
use tee_crypto::ctr::LINE_BYTES;
use tee_crypto::mac::{line_mac, MacKey, TensorMac};
use tee_crypto::{CtrEngine, DhKeyPair, Key, LineCounter, VnMerkleTree};
use tee_mem::{Cache, CacheConfig, PageMapper};
use tee_sim::{BandwidthResource, SplitMix64, Time};

proptest! {
    // Shared CI configuration: deterministic per-test seeds, bounded case
    // count, both overridable via PROPTEST_CASES / PROPTEST_RNG_SEED when
    // replaying a regression (see proptest-regressions/README.md).
    #![proptest_config(ProptestConfig::ci())]
    /// CTR encryption round-trips for any plaintext/counter pair.
    #[test]
    fn ctr_round_trip(seed in any::<u64>(), pa in any::<u64>(), vn in any::<u64>(),
                      data in vec(any::<u8>(), LINE_BYTES)) {
        let eng = CtrEngine::new(Key::from_seed(seed));
        let mut line = [0u8; LINE_BYTES];
        line.copy_from_slice(&data);
        let pa = pa & !63;
        let ct = eng.encrypt_line(&line, LineCounter { pa, vn });
        prop_assert_eq!(eng.decrypt_line(&ct, LineCounter { pa, vn }), line);
    }

    /// Changing any single byte of ciphertext changes the line MAC.
    #[test]
    fn mac_detects_any_single_byte_flip(seed in any::<u64>(),
                                        data in vec(any::<u8>(), LINE_BYTES),
                                        idx in 0usize..LINE_BYTES,
                                        flip in 1u8..=255) {
        let key = MacKey(Key::from_seed(seed).0);
        let mut line = [0u8; LINE_BYTES];
        line.copy_from_slice(&data);
        let before = line_mac(&key, &line, 0x40, 1);
        line[idx] ^= flip;
        let after = line_mac(&key, &line, 0x40, 1);
        prop_assert_ne!(before, after);
    }

    /// The tensor MAC is invariant under any permutation of absorb order.
    #[test]
    fn tensor_mac_permutation_invariant(tags in vec(any::<u64>(), 1..64), shuffle_seed in any::<u64>()) {
        let mut fwd = TensorMac::new();
        for &t in &tags {
            fwd.absorb(tee_crypto::MacTag::from_raw(t));
        }
        let mut shuffled = tags.clone();
        let mut rng = SplitMix64::new(shuffle_seed);
        rng.shuffle(&mut shuffled);
        let mut other = TensorMac::new();
        for &t in &shuffled {
            other.absorb(tee_crypto::MacTag::from_raw(t));
        }
        prop_assert_eq!(fwd.tag(), other.tag());
    }

    /// Merkle tree: any sequence of increments keeps every leaf verifiable;
    /// corrupting any leaf afterwards is detected at that leaf.
    #[test]
    fn merkle_consistency(updates in vec(0usize..256, 1..100), corrupt in 0usize..256) {
        let mut tree = VnMerkleTree::new(256, MacKey([7; 16]));
        for &u in &updates {
            tree.increment(u);
        }
        for i in 0..256 {
            prop_assert!(tree.verify(i).is_ok());
        }
        let old = tree.vn(corrupt);
        tree.corrupt_leaf(corrupt, old + 1);
        prop_assert!(tree.verify(corrupt).is_err());
    }

    /// Diffie–Hellman always agrees for any pair of nonzero secrets.
    #[test]
    fn dh_agrees(a in 1u64.., b in 1u64..) {
        let ka = DhKeyPair::from_secret(a);
        let kb = DhKeyPair::from_secret(b);
        prop_assert_eq!(ka.shared_key(kb.public()), kb.shared_key(ka.public()));
    }

    /// Page mapping preserves page offsets and is stable.
    #[test]
    fn page_mapper_offsets(seed in any::<u64>(), vas in vec(0u64..(1 << 40), 1..50)) {
        let mut m = PageMapper::new(seed);
        for &va in &vas {
            let pa = m.translate(va);
            prop_assert_eq!(pa % 4096, va % 4096);
            prop_assert_eq!(m.translate(va), pa);
        }
    }

    /// A cache never reports a dirty victim it did not previously admit as
    /// a write, and re-accessing any line immediately after access hits.
    #[test]
    fn cache_victims_are_real(addrs in vec(0u64..(1 << 16), 1..200), writes in vec(any::<bool>(), 200)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64 });
        let mut written: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (i, &a) in addrs.iter().enumerate() {
            let line = a & !63;
            let is_write = writes[i % writes.len()];
            if is_write {
                written.insert(line);
            }
            if let tee_mem::cache::AccessOutcome::Miss { victim: Some(v) } = c.access(line, is_write) {
                prop_assert!(written.contains(&v), "victim {v:#x} never written");
            }
            prop_assert!(c.contains(line), "just-accessed line resident");
        }
    }

    /// Meta Table: after inserting an entry covering a 1-D tensor, every
    /// line of it reads as hit_in and nothing outside does.
    #[test]
    fn meta_table_coverage_exact(base_page in 0u64..1000, lines in 1u64..128, vn in any::<u64>()) {
        let base = base_page * 4096;
        let mut t = MetaTable::new(8);
        t.insert(MetaEntry::new_1d(base, lines, 64, vn));
        for l in 0..lines {
            match t.lookup_read(base + l * 64) {
                ReadLookup::HitIn { vn: v, .. } => prop_assert_eq!(v, vn),
                other => prop_assert!(false, "line {l} not covered: {other:?}"),
            }
        }
        // One past the end is the boundary, not a hit.
        let past_end = t.lookup_read(base + lines * 64);
        let is_boundary = matches!(past_end, ReadLookup::HitBoundary { .. });
        prop_assert!(is_boundary, "expected boundary past the end");
    }

    /// Meta Table write rounds: writing every line exactly once, in any
    /// order that starts at the first line and ends at the last, bumps the
    /// VN exactly once.
    #[test]
    fn meta_table_round_any_middle_order(lines in 3u64..64, shuffle_seed in any::<u64>()) {
        let mut t = MetaTable::new(4);
        let slot = t.insert(MetaEntry::new_1d(0, lines, 64, 0));
        // First line, then the middle lines in random order, then last.
        let mut middle: Vec<u64> = (1..lines - 1).collect();
        SplitMix64::new(shuffle_seed).shuffle(&mut middle);
        t.lookup_write(0);
        for &l in &middle {
            let r = t.lookup_write(l * 64);
            prop_assert!(!matches!(r, tee_cpu::analyzer::meta_table::WriteLookup::Violation));
        }
        match t.lookup_write((lines - 1) * 64) {
            tee_cpu::analyzer::meta_table::WriteLookup::HitEdgeFinish { vn, .. } => {
                prop_assert_eq!(vn, 1);
            }
            other => prop_assert!(false, "round must finish: {other:?}"),
        }
        prop_assert_eq!(t.entry(slot).unwrap().vn, 1);
    }

    /// Tensor split covers every line exactly once for any thread count.
    #[test]
    fn tensor_split_partition(lines in 1u64..500, threads in 1u64..16) {
        let t = TensorDesc::new_1d(0x4000, lines * 64);
        let parts = t.split(threads);
        let mut covered: Vec<u64> = parts.iter().flat_map(|p| p.line_addrs()).collect();
        covered.sort_unstable();
        let expected: Vec<u64> = (0..lines).map(|l| 0x4000 + l * 64).collect();
        prop_assert_eq!(covered, expected);
    }

    /// Bandwidth resources never double-book: grants are disjoint and
    /// ordered for any request pattern.
    #[test]
    fn bandwidth_grants_disjoint(requests in vec((0u64..1_000_000, 1u64..100_000), 1..50)) {
        let mut r = BandwidthResource::new(1.0e9, Time::ZERO);
        let mut last_free = Time::ZERO;
        for &(at, bytes) in &requests {
            let g = r.acquire(Time::from_ns(at), bytes);
            prop_assert!(g.start >= last_free);
            prop_assert!(g.free >= g.start);
            last_free = g.free;
        }
    }
}
