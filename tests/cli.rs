//! CLI contract tests for the `tensortee` binary: exit codes and output
//! shape for the `run` partial-failure paths and flag validation.
//!
//! Exit-code convention: 0 = success, 1 = partial failure (some requested
//! artifact did not run), 2 = usage error (bad flags/arguments).

use std::process::{Command, Output};

fn tensortee(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tensortee"))
        .args(args)
        .output()
        .expect("spawn tensortee")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no exit code (signal?)")
}

#[test]
fn unknown_id_mid_list_runs_known_and_exits_one() {
    // The known artifact still runs, its JSON is well-formed, and the
    // process signals the partial failure with exit 1 (not the usage
    // error 2 — the command line itself was fine).
    let out = tensortee(&["run", "tab2", "bogus", "--fast", "--json"]);
    assert_eq!(code(&out), 1, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        tensortee::json::is_well_formed(stdout.trim()),
        "stdout not well-formed JSON: {stdout}"
    );
    assert!(stdout.contains("\"id\":\"tab2\""), "{stdout}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown artifact \"bogus\""), "{stderr}");
    assert!(stderr.contains("known ids:"), "{stderr}");
}

#[test]
fn entirely_unknown_selection_runs_nothing_and_exits_one() {
    let out = tensortee(&["run", "nope1", "nope2", "--json"]);
    assert_eq!(code(&out), 1, "{out:?}");
    assert!(out.stdout.is_empty(), "ran something for unknown ids");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(stderr.matches("unknown artifact").count(), 2, "{stderr}");
}

#[test]
fn known_selection_exits_zero_with_a_json_array() {
    let out = tensortee(&["run", "tab2", "sec65", "--fast", "--json"]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let trimmed = stdout.trim();
    assert!(
        trimmed.starts_with('[') && trimmed.ends_with(']'),
        "{stdout}"
    );
    assert!(tensortee::json::is_well_formed(trimmed), "{stdout}");
}

#[test]
fn zero_flag_values_are_usage_errors() {
    for args in [
        &["run", "--all", "--points", "0"][..],
        &["explore", "train", "--threads", "0"][..],
        &["bench", "--repeats", "0"][..],
        &["explore", "train", "--points", "0"][..],
    ] {
        let out = tensortee(args);
        assert_eq!(code(&out), 2, "{args:?} -> {out:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("must be at least 1"), "{args:?}: {stderr}");
        assert!(out.stdout.is_empty(), "{args:?} produced output");
    }
}

#[test]
fn unknown_scenario_lists_the_valid_ones_and_exits_two() {
    for args in [&["explore", "bogus"][..], &["explore"][..]] {
        let out = tensortee(args);
        assert_eq!(code(&out), 2, "{args:?} -> {out:?}");
        assert!(out.stdout.is_empty(), "{args:?} produced output");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("train|cluster|serve|des|fleet"),
            "{args:?} stderr must list the valid scenarios: {stderr}"
        );
    }
    let out = tensortee(&["explore", "bogus"]);
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown scenario \"bogus\""), "{stderr}");
}

#[test]
fn bench_rejects_positional_arguments() {
    let out = tensortee(&["bench", "fig03"]);
    assert_eq!(code(&out), 2, "{out:?}");
}

#[test]
fn missing_command_is_a_usage_error() {
    let out = tensortee(&[]);
    assert_eq!(code(&out), 2, "{out:?}");
    let out = tensortee(&["frobnicate"]);
    assert_eq!(code(&out), 2, "{out:?}");
}

#[test]
fn quiet_silences_stderr_but_not_the_payload() {
    let loud = tensortee(&["run", "tab2", "--fast", "--json"]);
    let quiet = tensortee(&["run", "tab2", "--fast", "--json", "--quiet"]);
    assert_eq!(code(&loud), 0, "{loud:?}");
    assert_eq!(code(&quiet), 0, "{quiet:?}");
    assert!(
        quiet.stderr.is_empty(),
        "--quiet left stderr chatter: {}",
        String::from_utf8_lossy(&quiet.stderr)
    );
    // The payload contract is unchanged: identical stdout, well-formed.
    assert_eq!(loud.stdout, quiet.stdout, "--quiet changed stdout");
    let stdout = String::from_utf8(quiet.stdout).unwrap();
    assert!(
        tensortee::json::is_well_formed(stdout.trim()),
        "stdout not well-formed JSON: {stdout}"
    );
}

#[test]
fn quiet_still_reports_partial_failures_on_stderr() {
    // Diagnostics are not chatter: unknown-id errors survive --quiet.
    let out = tensortee(&["run", "bogus", "--fast", "--json", "--quiet"]);
    assert_eq!(code(&out), 1, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown artifact \"bogus\""), "{stderr}");
}

#[test]
fn trace_subcommand_writes_a_well_formed_trace() {
    let dir = std::env::temp_dir().join(format!("tt_cli_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tab2.json");
    let out = tensortee(&["trace", "tab2", "--fast", "--out", path.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{out:?}");
    let trace = std::fs::read_to_string(&path).expect("trace file written");
    assert!(
        tensortee::json::is_well_formed(trace.trim()),
        "trace not well-formed JSON: {trace}"
    );
    assert!(trace.contains("\"traceEvents\""), "{trace}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_of_unknown_artifact_is_a_runtime_failure_not_usage() {
    let out = tensortee(&["trace", "bogus"]);
    assert_eq!(code(&out), 1, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown artifact \"bogus\""), "{stderr}");
    assert!(stderr.contains("known ids:"), "{stderr}");
}

#[test]
fn trace_requires_exactly_one_artifact_id() {
    for args in [&["trace"][..], &["trace", "tab2", "sec65"][..]] {
        let out = tensortee(args);
        assert_eq!(code(&out), 2, "{args:?} -> {out:?}");
        assert!(out.stdout.is_empty(), "{args:?} produced output");
    }
}

#[test]
fn tracing_does_not_change_run_output() {
    // The observability acceptance bar: a traced run's report bytes are
    // identical to an untraced run's.
    let dir = std::env::temp_dir().join(format!("tt_cli_traced_run_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let plain = tensortee(&["run", "des_parity", "--fast", "--json"]);
    let traced = tensortee(&[
        "run",
        "des_parity",
        "--fast",
        "--json",
        "--trace",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert_eq!(code(&plain), 0, "{plain:?}");
    assert_eq!(code(&traced), 0, "{traced:?}");
    assert_eq!(plain.stdout, traced.stdout, "--trace perturbed the report");
    assert!(path.exists(), "--trace did not write the trace file");
    std::fs::remove_dir_all(&dir).ok();
}
