//! Design-space exploration integration suite (tee-explore + the
//! `explore_pareto` / `explore_sensitivity` artifacts).
//!
//! The load-bearing invariants:
//!
//! * **thread-count invariance** — the same context produces
//!   byte-identical reports for 1 vs. 4 worker threads (the CLI's
//!   `--threads` promise),
//! * **frontier soundness on real evaluations** — no frontier point is
//!   dominated by any sampled point, and every mode either appears on
//!   the frontier or the report says why it never does (the acceptance
//!   shape of the artifact),
//! * **every scenario prices** — train, cluster, serve, des, fleet and
//!   attack sweeps all run under the reduced context and stay
//!   deterministic.

use tee_explore::dominates;
use tensortee::artifact::{find, RunContext};
use tensortee::explore::{
    explore_pareto_for, explore_sensitivity_for, run_scenario, Scenario, SENSES,
};
use tensortee::SecureMode;

/// A thin context so the whole suite stays in test-suite time: one small
/// model, a handful of points.
fn thin() -> RunContext {
    let mut ctx = RunContext::fast();
    ctx.models.truncate(1); // GPT
    ctx.explore_points = 10;
    ctx
}

#[test]
fn reports_are_byte_identical_across_worker_thread_counts() {
    for scenario in [
        Scenario::Train,
        Scenario::Serve,
        Scenario::Des,
        Scenario::Attack,
    ] {
        let one = thin().with_worker_threads(1);
        let four = thin().with_worker_threads(4);
        let (_, report_one) = explore_pareto_for(scenario, &one);
        let (_, report_four) = explore_pareto_for(scenario, &four);
        assert_eq!(
            report_one.to_markdown(),
            report_four.to_markdown(),
            "{}: markdown differs across thread counts",
            scenario.label()
        );
        assert_eq!(
            report_one.to_json().to_string(),
            report_four.to_json().to_string(),
            "{}: JSON differs across thread counts",
            scenario.label()
        );
    }
}

#[test]
fn frontier_is_sound_against_every_sampled_evaluation() {
    let ctx = thin();
    let run = run_scenario(Scenario::Train, &ctx);
    let flat = run.flat();
    let objs: Vec<Vec<f64>> = flat.iter().map(|(_, e)| e.objectives()).collect();
    let frontier = run.frontier();
    assert!(!frontier.is_empty());
    for &f in &frontier {
        for other in &objs {
            assert!(
                !dominates(other, &objs[f], &SENSES),
                "frontier evaluation {f} is dominated"
            );
        }
    }
}

#[test]
fn every_mode_is_on_the_frontier_or_explained() {
    // The artifact's acceptance shape: each of the three security modes
    // has at least one non-dominated point, or the report carries a note
    // saying why that mode never is.
    let ctx = RunContext::fast().with_explore_points(24);
    let artifact = find("explore_pareto").unwrap();
    let report = artifact.run(&ctx);
    for (mode, key) in [
        (SecureMode::NonSecure, "frontier_non_secure"),
        (SecureMode::SgxMgx, "frontier_sgx_mgx"),
        (SecureMode::TensorTee, "frontier_tensortee"),
    ] {
        let count = report
            .metric_value(key)
            .unwrap_or_else(|| panic!("metric {key} missing"));
        if count == 0.0 {
            let explained = report
                .notes()
                .iter()
                .any(|n| n.contains(mode.label()) && n.contains("never non-dominated"));
            assert!(
                explained,
                "{} absent from the frontier without an explanatory note",
                mode.label()
            );
        }
    }
    // The secure-modes frontier always exists and TensorTEE leads it.
    assert!(report.metric_value("frontier_secure_size").unwrap() >= 1.0);
    assert!(report.metric_value("frontier_secure_tensortee").unwrap() >= 1.0);
}

#[test]
fn crossover_analysis_compares_the_secure_modes() {
    let ctx = thin();
    let (_, report) = explore_pareto_for(Scenario::Train, &ctx);
    // Both metrics exist, and the direct protocol never loses to staging
    // on the training step (it strictly removes crypto serialization).
    let min = report.metric_value("min_speedup_vs_sgx_mgx").unwrap();
    let max = report.metric_value("max_speedup_vs_sgx_mgx").unwrap();
    assert!(min > 1.0, "staging overtook TensorTEE: {min}");
    assert!(max >= min);
    assert_eq!(report.metric_value("crossover_points"), Some(0.0));
    assert!(report.notes().iter().any(|n| n.contains("No crossover")));
}

#[test]
fn sensitivity_covers_every_knob_per_mode() {
    let ctx = thin();
    let (run, report) = explore_sensitivity_for(Scenario::Train, &ctx);
    // One-at-a-time plan: baseline + sum over knobs of (levels - 1).
    let expected: usize = 1 + run.space.knobs().iter().map(|k| k.len() - 1).sum::<usize>();
    assert_eq!(run.points.len(), expected);
    let md = report.to_markdown();
    for knob in run.space.knobs() {
        assert!(md.contains(knob.name), "{} missing from tornado", knob.name);
    }
    for key in [
        "top_swing_tps_non_secure",
        "top_swing_tps_sgx_mgx",
        "top_swing_tps_tensortee",
    ] {
        assert!(report.metric_value(key).unwrap() >= 0.0, "{key}");
    }
}

#[test]
fn cluster_scenario_prices_the_fabric_and_stays_deterministic() {
    let mut ctx = thin();
    ctx.explore_points = 8;
    let (run, report) = explore_pareto_for(Scenario::Cluster, &ctx);
    assert_eq!(run.points.len(), 8);
    assert!(run.space.knobs().iter().any(|k| k.name == "fabric"));
    for evals in &run.evals {
        for e in evals {
            assert!(e.throughput_tps > 0.0);
        }
    }
    let (_, again) = explore_pareto_for(Scenario::Cluster, &ctx);
    assert_eq!(report.to_markdown(), again.to_markdown());
}

#[test]
fn serve_scenario_shares_one_trace_per_point_and_seed_matters() {
    let mut ctx = thin();
    ctx.explore_points = 6;
    let run = run_scenario(Scenario::Serve, &ctx);
    for evals in &run.evals {
        // Same trace across modes: the non-secure goodput bounds the
        // secure ones from above (same arrivals, strictly less work).
        let ns = &evals[0];
        assert_eq!(ns.mode, SecureMode::NonSecure);
        for e in &evals[1..] {
            assert!(
                e.throughput_tps <= ns.throughput_tps * 1.0001,
                "{} beats non-secure on its own trace",
                e.mode.label()
            );
        }
    }
    let reseeded = run_scenario(Scenario::Serve, &ctx.with_seed(7));
    let tps = |r: &tensortee::explore::ExploreRun| {
        r.evals
            .iter()
            .map(|e| e[0].throughput_tps)
            .collect::<Vec<_>>()
    };
    assert_ne!(tps(&run), tps(&reseeded), "seed must reach the traces");
}

#[test]
fn des_scenario_prices_stragglers_and_pipelines() {
    let mut ctx = thin();
    ctx.explore_points = 8;
    let (run, report) = explore_pareto_for(Scenario::Des, &ctx);
    assert_eq!(run.points.len(), 8);
    for name in ["straggler", "layout", "microbatches"] {
        assert!(
            run.space.knobs().iter().any(|k| k.name == name),
            "{name} knob missing from the des space"
        );
    }
    for evals in &run.evals {
        for e in evals {
            assert!(e.throughput_tps > 0.0);
        }
    }
    let (_, again) = explore_pareto_for(Scenario::Des, &ctx);
    assert_eq!(report.to_markdown(), again.to_markdown());
}

#[test]
fn registered_explore_artifacts_run_under_the_registry() {
    // The registry path (what `tensortee run explore_pareto` does) —
    // markdown and JSON shapes hold under the thin context.
    let ctx = thin();
    for id in ["explore_pareto", "explore_sensitivity"] {
        let report = find(id).unwrap().run(&ctx);
        let md = report.to_markdown();
        assert!(md.contains("Scenario: train."), "{id}");
        assert!(
            tensortee::json::is_well_formed(&report.to_json().to_string()),
            "{id}"
        );
    }
}
