//! Observability invariants: tracing must never perturb results, and the
//! exported traces must be structurally sound.
//!
//! The load-bearing test here is [`every_artifact_is_byte_identical_under_tracing`]:
//! it runs the complete registry twice — once with the no-op probe and once
//! recording — and demands byte-identical report JSON and markdown. Probes
//! observe [`tee_sim::Time`]; they never advance it.

use proptest::collection::vec;
use proptest::prelude::*;
use tee_sim::probe::{MetricsRegistry, ProbeEvent, SharedProbe};
use tensortee::artifact::{find, registry, RunContext};
use tensortee::obs::chrome_trace;

/// Runs `id` under a fresh fast context with a recording probe and returns
/// the snapshot of everything it emitted.
fn record(id: &str) -> tee_sim::probe::TraceProbe {
    let probe = SharedProbe::recording();
    let ctx = RunContext::fast().with_probe(probe.clone());
    find(id).expect("known artifact").run(&ctx);
    probe.snapshot().expect("recording probe has a snapshot")
}

#[test]
fn every_artifact_is_byte_identical_under_tracing() {
    for artifact in registry() {
        let plain = artifact.run(&RunContext::fast());
        let probe = SharedProbe::recording();
        let traced = artifact.run(&RunContext::fast().with_probe(probe.clone()));
        assert_eq!(
            plain.to_json().to_string(),
            traced.to_json().to_string(),
            "{}: tracing changed the report JSON",
            artifact.id
        );
        assert_eq!(
            plain.to_markdown(),
            traced.to_markdown(),
            "{}: tracing changed the report markdown",
            artifact.id
        );
    }
}

#[test]
fn traced_fleet_latency_names_the_required_tracks() {
    // Acceptance bar: a fleet trace distinguishes at least four tracks —
    // compute (NPU*), host (CPU), interconnect (link), and routing.
    let snap = record("fleet_latency");
    let tracks: std::collections::BTreeSet<&str> =
        snap.events().iter().map(ProbeEvent::track).collect();
    for required in ["router", "CPU", "link"] {
        assert!(tracks.contains(required), "missing {required}: {tracks:?}");
    }
    assert!(
        tracks.iter().any(|t| t.starts_with("NPU")),
        "no NPU track: {tracks:?}"
    );
    assert!(tracks.len() >= 4, "fewer than 4 tracks: {tracks:?}");
}

#[test]
fn chrome_export_is_well_formed_with_sane_timestamps() {
    let snap = record("des_parity");
    assert!(!snap.events().is_empty(), "des_parity recorded nothing");
    let json = chrome_trace(&snap).to_string();
    assert!(
        tensortee::json::is_well_formed(&json),
        "chrome trace not well-formed: {json}"
    );
    assert!(json.contains("\"traceEvents\""), "{json}");
    // Every span is non-negative and properly ordered; Time is unsigned so
    // negativity is impossible by construction, but end >= start is not.
    for ev in snap.events() {
        if let ProbeEvent::Span { start, end, .. } = ev {
            assert!(end >= start, "span ends before it starts: {ev:?}");
        }
    }
}

#[test]
fn begin_end_pairs_never_underflow_any_track() {
    // Every recorded stream keeps per-track Begin/End depth non-negative
    // when scanned in emission order — an End without a Begin would render
    // as a dangling close in Perfetto.
    for id in ["des_parity", "fleet_latency", "serve_latency", "tab2"] {
        let snap = record(id);
        let mut depth: std::collections::BTreeMap<&str, i64> = std::collections::BTreeMap::new();
        for ev in snap.events() {
            match ev {
                ProbeEvent::Begin { track, .. } => *depth.entry(track).or_default() += 1,
                ProbeEvent::End { track, .. } => {
                    let d = depth.entry(track).or_default();
                    *d -= 1;
                    assert!(*d >= 0, "{id}: unmatched End on track {track}");
                }
                _ => {}
            }
        }
        for (track, d) in depth {
            assert_eq!(d, 0, "{id}: {d} unclosed Begin(s) on track {track}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::ci())]
    /// Merging per-shard metric registries is order-independent: any
    /// partition of a bump sequence, merged in any order, yields the same
    /// totals as applying the sequence to one registry.
    #[test]
    fn metrics_merge_is_order_independent(
        ops in vec((0usize..6, 1u64..1000), 1..200),
        shards in 1usize..8,
        shuffle_seed in any::<u64>(),
    ) {
        let names = ["des.ticks", "des.sends", "link.grants",
                     "serve.iterations", "fleet.dispatched", "train.steps"];
        let mut reference = MetricsRegistry::new();
        let mut parts: Vec<MetricsRegistry> =
            (0..shards).map(|_| MetricsRegistry::new()).collect();
        for (i, &(name, delta)) in ops.iter().enumerate() {
            reference.bump(names[name], delta);
            parts[i % shards].bump(names[name], delta);
        }
        let mut order: Vec<usize> = (0..shards).collect();
        tee_sim::SplitMix64::new(shuffle_seed).shuffle(&mut order);
        let mut merged = MetricsRegistry::new();
        for &s in &order {
            merged.merge(&parts[s]);
        }
        let lhs: Vec<(String, u64)> =
            merged.iter().map(|(k, v)| (k.to_string(), v)).collect();
        let rhs: Vec<(String, u64)> =
            reference.iter().map(|(k, v)| (k.to_string(), v)).collect();
        prop_assert_eq!(lhs, rhs);
    }
}
