//! Adversary & side-channel integration suite (tee-attack + the
//! `attack_*` artifacts).
//!
//! The load-bearing invariants:
//!
//! * **estimator properties** — the leakage estimators the defense
//!   claims rest on are non-negative, bounded by `log2(#classes)`,
//!   exactly zero on constant traffic, and bitwise deterministic
//!   (thread-count invariance of the `attack` explore scenario is
//!   pinned end-to-end in tests/explore.rs),
//! * **defenses monotonically reduce leakage** — on *any* observation,
//!   not just simulated ones,
//! * **the acceptance ordering** — `attack_defended` reports strictly
//!   ordered leakage (unshaped > padded > constant-rate = 0; plain
//!   spill > shielded ≈ 0) with every defense's cost priced in the
//!   same report.

use proptest::collection::vec;
use proptest::prelude::*;
use tee_attack::{
    extractable_bits, mutual_information_bits, KvShield, LinkEvent, Observation, Shaping,
    MEASUREMENT_QUANTUM, SHIELD_SLOT_BYTES,
};
use tee_sim::Time;
use tensortee::artifact::{find, RunContext};

#[test]
fn defended_artifact_orders_leakage_and_prices_defenses() {
    let ctx = RunContext::fast();
    let report = find("attack_defended").unwrap().run(&ctx);
    let unshaped = report.metric_value("traffic_bits_unshaped").unwrap();
    let padded = report.metric_value("traffic_bits_padded").unwrap();
    let flat = report.metric_value("traffic_bits_constant_rate").unwrap();
    assert!(
        unshaped > padded && padded > flat,
        "leakage must order strictly: {unshaped} > {padded} > {flat}"
    );
    assert_eq!(flat, 0.0, "constant-rate must leak exactly nothing");
    let pad_ms = report.metric_value("padding_ms_padded").unwrap();
    let flat_ms = report.metric_value("padding_ms_constant_rate").unwrap();
    assert!(
        flat_ms > pad_ms && pad_ms > 0.0,
        "stronger shaping must cost more padding: {flat_ms} > {pad_ms} > 0"
    );
    let plain = report.metric_value("residency_bits_plain_spill").unwrap();
    let shielded = report.metric_value("residency_bits_shielded").unwrap();
    assert!(
        plain > shielded && shielded.abs() < 1e-9,
        "shield must blind the residency adversary: {plain} > {shielded} ~ 0"
    );
    assert_eq!(
        report.metric_value("shield_overhead_ms_plain_spill"),
        Some(0.0)
    );
    assert!(report.metric_value("shield_overhead_ms_shielded").unwrap() > 0.0);
}

#[test]
fn traffic_and_residency_artifacts_expose_their_channels() {
    let ctx = RunContext::fast();
    let traffic = find("attack_traffic").unwrap().run(&ctx);
    let models = traffic.metric_value("models").unwrap();
    assert!(traffic.metric_value("classifier_accuracy").unwrap() > 1.0 / models);
    let mi = traffic.metric_value("mutual_information_bits").unwrap();
    assert!(mi >= 0.0 && mi <= models.log2() + 1e-9);

    let residency = find("attack_kv_residency").unwrap().run(&ctx);
    assert!(residency.metric_value("fleet_migrations").unwrap() > 0.0);
    let plain = residency.metric_value("residency_bits_plain").unwrap();
    let shielded = residency.metric_value("residency_bits_shielded").unwrap();
    assert!(plain > shielded && shielded.abs() < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::ci())]

    /// The plug-in MI estimator is non-negative and bounded by the
    /// entropy of the class marginal, hence by `log2(#classes)`.
    #[test]
    fn mi_is_non_negative_and_bounded_by_class_count(
        samples in vec((0u64..6, 0u64..32), 1..300),
    ) {
        let bits = mutual_information_bits(&samples);
        prop_assert!(bits >= 0.0);
        let mut classes: Vec<u64> = samples.iter().map(|&(c, _)| c).collect();
        classes.sort_unstable();
        classes.dedup();
        prop_assert!(bits <= (classes.len() as f64).log2() + 1e-9);
    }

    /// A constant feature — fully shaped traffic — yields exactly zero
    /// bits, whatever the class labels behind it.
    #[test]
    fn constant_traffic_yields_exactly_zero_bits(
        classes in vec(0u64..16, 1..200),
        feature in any::<u64>(),
    ) {
        let samples: Vec<(u64, u64)> = classes.iter().map(|&c| (c, feature)).collect();
        prop_assert_eq!(mutual_information_bits(&samples), 0.0);
        prop_assert_eq!(extractable_bits(&vec![feature; classes.len()]), 0.0);
    }

    /// Both estimators are pure functions: repeated evaluation is
    /// bitwise identical (with the executor contract, this is what the
    /// `--threads` byte-identity promise reduces to).
    #[test]
    fn estimators_are_bitwise_deterministic(
        samples in vec((0u64..6, 0u64..32), 1..300),
    ) {
        let features: Vec<u64> = samples.iter().map(|&(_, f)| f).collect();
        prop_assert_eq!(
            mutual_information_bits(&samples).to_bits(),
            mutual_information_bits(&samples).to_bits()
        );
        prop_assert_eq!(
            extractable_bits(&features).to_bits(),
            extractable_bits(&features).to_bits()
        );
    }

    /// Shaping can only reduce what the wire gives away: padding never
    /// raises the observed entropy, and constant-rate erases it — on
    /// any observation, not just simulated ones.
    #[test]
    fn shaping_monotonically_reduces_entropy(
        durations in vec(1u64..10_000_000, 0..64),
    ) {
        let events: Vec<LinkEvent> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| LinkEvent {
                at: Time::from_ns(i as u64 * 20_000_000),
                duration: Time::from_ns(d),
            })
            .collect();
        let view = Observation::from_events(events);
        let raw = extractable_bits(&view.features(MEASUREMENT_QUANTUM));
        let padded = Shaping::Padded.apply(&view);
        let flat = Shaping::ConstantRate.apply(&view);
        prop_assert!(
            extractable_bits(&padded.observation.features(MEASUREMENT_QUANTUM)) <= raw + 1e-9
        );
        prop_assert_eq!(
            extractable_bits(&flat.observation.features(MEASUREMENT_QUANTUM)),
            0.0
        );
    }

    /// The at-rest shield only pads — never shrinks — and every
    /// shielded object is a whole number of shield slots, so sizes
    /// cannot distinguish objects within a slot count.
    #[test]
    fn shield_only_pads_and_quantizes(sizes in vec(0u64..(1u64 << 40), 0..64)) {
        let observed = KvShield::Shielded.observed_sizes(&sizes);
        prop_assert_eq!(observed.len(), sizes.len());
        for (&s, &o) in sizes.iter().zip(&observed) {
            prop_assert!(o >= s);
            prop_assert_eq!(o % SHIELD_SLOT_BYTES, 0);
        }
    }
}
