//! Bench-trajectory invariants (the `tensortee bench` / `BENCH_<rev>.json`
//! contract):
//!
//! * the JSON shape is well-formed per the hand-rolled `tensortee::json`
//!   validator and carries one entry per registry artifact (floor ≥ 28),
//! * timings are the *only* floats — masking every `Json::Float` makes
//!   two independent measurements byte-identical (what lets the CI
//!   ratchet compare structure strictly and timings with a tolerance).

use tensortee::artifact::{registry, RunContext};
use tensortee::json::{is_well_formed, Json};
use tensortee::perf::{BenchOptions, BenchTrajectory, SCHEMA};

/// A thin context so two full measurements stay in test-suite time: one
/// small model, minimal sweep/serve budgets.
fn thin() -> RunContext {
    let mut ctx = RunContext::fast();
    ctx.models.truncate(1); // GPT
    ctx.explore_points = 6;
    ctx.serve_requests = 8;
    ctx.fleet_requests = 16;
    ctx.cluster_sizes = vec![1, 2];
    ctx
}

/// Replaces every float in `json` with 0.0, leaving structure, strings
/// and integers untouched.
fn mask_floats(json: Json) -> Json {
    match json {
        Json::Float(_) => Json::Float(0.0),
        Json::Array(items) => Json::Array(items.into_iter().map(mask_floats).collect()),
        Json::Object(pairs) => Json::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k, mask_floats(v)))
                .collect(),
        ),
        other => other,
    }
}

#[test]
fn trajectory_covers_the_registry_and_differs_only_in_timings() {
    let ctx = thin();
    let opts = BenchOptions {
        repeats: 1,
        warmup: 0,
        progress: false,
    };
    let first = BenchTrajectory::measure(&ctx, &opts);
    let second = BenchTrajectory::measure(&ctx, &opts);

    // One entry per registry artifact, in registry order, floor ≥ 28.
    assert!(first.artifacts.len() >= 28, "{}", first.artifacts.len());
    assert_eq!(first.artifacts.len(), registry().len());
    for (timing, artifact) in first.artifacts.iter().zip(registry()) {
        assert_eq!(timing.id, artifact.id);
        assert!(timing.min_ms <= timing.median_ms && timing.median_ms <= timing.max_ms);
    }
    // All six explore scenarios, each priced over the context budget.
    assert_eq!(first.sweeps.len(), 6);
    for sweep in &first.sweeps {
        assert_eq!(
            sweep.points, ctx.explore_points as usize,
            "{}",
            sweep.scenario
        );
        assert!(sweep.evaluations >= sweep.points, "{}", sweep.scenario);
        assert!(sweep.per_point_us >= 0.0);
    }
    // The event-queue microbench: calendar then its heap reference, both
    // over the ≥ 10^6-event hold-model workload.
    let queues: Vec<&str> = first.queues.iter().map(|q| q.queue).collect();
    assert_eq!(queues, ["calendar", "heap"]);
    for q in &first.queues {
        assert!(q.events >= 1_000_000, "{}: {}", q.queue, q.events);
        assert!(q.median_ms > 0.0 && q.per_event_ns > 0.0, "{}", q.queue);
    }
    // The probe-overhead microbench: tracing off, then recording; only
    // the recording row carries events (the null row pins zero-when-off).
    let probes: Vec<&str> = first.probes.iter().map(|p| p.probe).collect();
    assert_eq!(probes, ["null", "trace"]);
    assert_eq!(first.probes[0].events, 0);
    assert!(first.probes[1].events > 0);
    // The adversary-analysis microbench: the tee-attack stages, each
    // fed a non-empty frozen input.
    let attacks: Vec<&str> = first.attacks.iter().map(|a| a.stage).collect();
    assert_eq!(attacks, ["observe", "traffic", "residency"]);
    for a in &first.attacks {
        assert!(a.events > 0, "{}: nothing to analyze", a.stage);
        assert!(a.median_ms >= 0.0 && a.median_ms.is_finite(), "{}", a.stage);
    }

    // Well-formed per the hand-rolled validator, schema-tagged.
    let json = first.to_json();
    let serialized = json.to_string();
    assert!(is_well_formed(&serialized), "{serialized}");
    assert!(serialized.contains(&format!("\"schema\":\"{SCHEMA}\"")));
    assert!(serialized.contains("\"profile\":\"fast\""));

    // Two runs differ only in timing fields: byte-identical after
    // masking every float.
    assert_eq!(
        mask_floats(json).to_string(),
        mask_floats(second.to_json()).to_string(),
        "non-timing fields differ between bench runs"
    );

    // The baseline file name embeds the measured revision.
    let name = first.file_name();
    assert!(
        name.starts_with("BENCH_") && name.ends_with(".json"),
        "{name}"
    );
    assert_eq!(name, format!("BENCH_{}.json", first.rev));
}
