//! Inference-serving invariants (tee-serve extension, §3.3/§4.3 under a
//! serving workload): on the same seeded trace, TensorTEE's goodput is
//! at least SGX+MGX's, its exposed KV-transfer time is strictly lower,
//! every request completes under every mode, and the simulation is
//! deterministic.

use tee_serve::{simulate, SecurityProfile, ServeConfig, TraceConfig};
use tensortee::artifact::RunContext;
use tensortee::experiments::{serve_latency, serve_profile};
use tensortee::SecureMode;

/// The fast-context serving comparison backing most assertions.
fn fast_rows() -> Vec<tensortee::experiments::ServeRow> {
    serve_latency(&RunContext::fast()).0
}

fn row(
    rows: &[tensortee::experiments::ServeRow],
    mode: SecureMode,
) -> &tensortee::experiments::ServeRow {
    rows.iter()
        .find(|r| r.mode == mode)
        .expect("mode simulated")
}

#[test]
fn tensortee_goodput_at_least_sgx_mgx_on_the_same_trace() {
    let rows = fast_rows();
    let base = row(&rows, SecureMode::SgxMgx);
    let ours = row(&rows, SecureMode::TensorTee);
    assert!(
        ours.report.goodput_tps() >= base.report.goodput_tps(),
        "TensorTEE {} tok/s vs SGX+MGX {} tok/s",
        ours.report.goodput_tps(),
        base.report.goodput_tps()
    );
    // And the non-secure reference bounds everyone from above.
    let ns = row(&rows, SecureMode::NonSecure);
    assert!(ns.report.goodput_tps() >= ours.report.goodput_tps());
}

#[test]
fn tensortee_exposes_strictly_less_kv_transfer_time() {
    let rows = fast_rows();
    let base = row(&rows, SecureMode::SgxMgx);
    let ours = row(&rows, SecureMode::TensorTee);
    assert!(
        base.report.kv_stats.get("offloads") > 0,
        "the KV budget must force HBM->DRAM migration: {}",
        base.report.kv_stats
    );
    assert!(
        ours.report.kv_exposed_time < base.report.kv_exposed_time,
        "direct must hide KV migration the staging protocol exposes: {} vs {}",
        ours.report.kv_exposed_time,
        base.report.kv_exposed_time
    );
    // Raw (pre-overlap) transfer time is also cheaper: no re-encryption.
    assert!(ours.report.kv_transfer_time < base.report.kv_transfer_time);
}

#[test]
fn every_mode_drains_the_trace_with_finite_tails() {
    for r in fast_rows() {
        let rep = &r.report;
        assert_eq!(
            rep.completed_requests,
            rep.total_requests,
            "{} dropped requests",
            r.mode.label()
        );
        let p50 = rep.ttft_percentile(0.50).expect("completions recorded");
        let p99 = rep.ttft_percentile(0.99).expect("completions recorded");
        assert!(p50 <= p99, "{}: {p50} > {p99}", r.mode.label());
        assert!(rep.latency_percentile(0.99).unwrap() >= p99);
        assert!(rep.tpot_mean() > tee_sim::Time::ZERO);
    }
}

#[test]
fn serving_simulation_is_deterministic_and_seed_sensitive() {
    let ctx = RunContext::fast();
    let a = serve_latency(&ctx).1;
    let b = serve_latency(&ctx).1;
    assert_eq!(a.to_markdown(), b.to_markdown());
    assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    let c = serve_latency(&ctx.with_seed(7)).1;
    assert_ne!(
        a.to_markdown(),
        c.to_markdown(),
        "a different seed must produce a different trace"
    );
}

#[test]
fn serve_profile_mirrors_the_training_modes() {
    assert_eq!(
        serve_profile(SecureMode::TensorTee).label,
        SecureMode::TensorTee.label()
    );
    assert_eq!(
        serve_profile(SecureMode::SgxMgx).label,
        SecureMode::SgxMgx.label()
    );
    assert_eq!(
        serve_profile(SecureMode::NonSecure).label,
        SecureMode::NonSecure.label()
    );
}

#[test]
fn library_level_serving_runs_outside_the_registry() {
    // The tee-serve crate is usable without a RunContext — the example
    // and downstream users drive it directly.
    let model = tee_workloads::zoo::by_name("GPT").unwrap();
    let cfg = ServeConfig::for_model(&model, 4, 640);
    let trace = TraceConfig::bursty(8, 16.0, 4, 1).generate();
    let r = simulate(&cfg, &model, &SecurityProfile::tensor_tee(), &trace);
    assert_eq!(r.completed_requests, 8);
    assert!(r.goodput_tps() > 0.0);
}
