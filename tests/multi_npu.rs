//! Multi-NPU data-parallel integration: the strong-scaling shapes of the
//! ring all-reduce extension (see EXPERIMENTS.md, `scaling_1_2_4_8`).
//!
//! Key invariants: a one-replica cluster reproduces the single-NPU
//! [`tensortee::TrainingSystem`] bit-for-bit, per-rank all-reduce traffic
//! follows the `2·(N−1)/N·grad_bytes` ring formula, and the staging
//! protocol's exposed-communication fraction grows with N while the
//! direct protocol's stays near its single-NPU level.

use tee_comm::ring::{Interconnect, RingAllReduce};
use tee_sim::Time;
use tee_workloads::zoo::by_name;
use tensortee::{
    ClusterConfig, ClusterStepBreakdown, ClusterSystem, SecureMode, SystemConfig, TrainingSystem,
};

fn cfg() -> SystemConfig {
    SystemConfig::fast_sim()
}

fn step(mode: SecureMode, n: u32) -> ClusterStepBreakdown {
    let model = by_name("GPT2-M").unwrap();
    ClusterSystem::new(cfg(), ClusterConfig::of(n), mode).simulate_step(&model)
}

#[test]
fn one_replica_cluster_reduces_to_single_system() {
    // The N=1 cluster must equal today's TrainingSystem *bit-for-bit* in
    // every phase, under every mode, with a zero all-reduce phase.
    let model = by_name("GPT2-M").unwrap();
    for mode in SecureMode::all() {
        let single = TrainingSystem::new(cfg(), mode).simulate_step(&model);
        let cluster = step(mode, 1);
        assert_eq!(cluster.comm_ar, Time::ZERO, "{}", mode.label());
        assert_eq!(cluster.npu, single.npu, "{}", mode.label());
        assert_eq!(cluster.cpu, single.cpu, "{}", mode.label());
        assert_eq!(cluster.comm_w, single.comm_w, "{}", mode.label());
        assert_eq!(cluster.comm_g, single.comm_g, "{}", mode.label());
        assert_eq!(cluster.single(), single, "{}", mode.label());
        assert_eq!(cluster.total(), single.total(), "{}", mode.label());
    }
}

#[test]
fn all_reduce_bytes_follow_ring_formula() {
    // Each rank wires 2·(N−1)/N·grad_bytes, up to per-chunk ceil rounding.
    let grad = by_name("GPT2-M").unwrap().grad_bytes();
    for n in 1u32..=8 {
        let b = RingAllReduce::new(n, Interconnect::PcieP2p).direct(grad);
        let ideal = 2 * (u64::from(n) - 1) * grad / u64::from(n);
        assert!(b.wire_bytes() >= ideal, "N={n}");
        assert!(b.wire_bytes() < ideal + 2 * u64::from(n), "N={n}");
        assert_eq!(b.steps, 2 * (n - 1), "N={n}");
    }
    // N=1 is a strict no-op.
    let noop = RingAllReduce::new(1, Interconnect::PcieP2p).staged(grad);
    assert_eq!(noop.wire_bytes(), 0);
    assert_eq!(noop.total(), Time::ZERO);
}

#[test]
fn staging_exposed_comm_fraction_grows_with_cluster_size() {
    // Every ring hop pays the §3.3 staging conversion while per-replica
    // compute shrinks, so the exposed-communication share keeps climbing.
    let f: Vec<f64> = [1u32, 2, 4, 8]
        .iter()
        .map(|&n| step(SecureMode::SgxMgx, n).exposed_comm_fraction())
        .collect();
    for w in f.windows(2) {
        assert!(w[1] > w[0], "staging share must grow: {f:?}");
    }
    assert!(f[3] > f[0] + 0.2, "grows substantially by N=8: {f:?}");
}

#[test]
fn direct_exposed_comm_fraction_stays_roughly_flat() {
    // The direct protocol hides the collective inside the backward
    // window, so the share stays near its single-NPU level even at N=8,
    // and far below the staging share.
    let at = |n| step(SecureMode::TensorTee, n).exposed_comm_fraction();
    let (f1, f8) = (at(1), at(8));
    assert!(f8 - f1 < 0.15, "roughly flat: {f1:.3} -> {f8:.3}");
    let staging8 = step(SecureMode::SgxMgx, 8).exposed_comm_fraction();
    assert!(
        f8 < staging8 - 0.3,
        "direct {f8:.3} far below staging {staging8:.3} at N=8"
    );
}

#[test]
fn only_the_direct_protocol_strong_scales() {
    // TensorTEE's step time keeps dropping as replicas are added; the
    // staging baseline's serialized all-reduce eats the compute savings
    // and the step gets *slower* than single-NPU.
    let ours: Vec<Time> = [1u32, 2, 4, 8]
        .iter()
        .map(|&n| step(SecureMode::TensorTee, n).total())
        .collect();
    for w in ours.windows(2) {
        assert!(w[1] < w[0], "TensorTEE strong-scales: {ours:?}");
    }
    let base1 = step(SecureMode::SgxMgx, 1).total();
    let base8 = step(SecureMode::SgxMgx, 8).total();
    assert!(
        base8 > base1,
        "staging anti-scales: {base1} -> {base8} at N=8"
    );
    assert!(ours[3] < base8, "TensorTEE wins at N=8");
}

#[test]
fn slow_custom_fabric_surfaces_in_the_weight_phase() {
    // The fp16 re-broadcast pipelines with the CPU→NPU weight stream, so
    // on the default fabric it is free — but a ring slower than the CPU
    // link must become the weight-path bottleneck, not vanish.
    let model = by_name("GPT2-M").unwrap();
    let slow = ClusterConfig {
        n_npus: 4,
        interconnect: Interconnect::Custom {
            bytes_per_sec: 1_000_000_000, // 1 GB/s, far under PCIe's 32
            latency_ns: 600,
        },
    };
    let on_slow = ClusterSystem::new(cfg(), slow, SecureMode::TensorTee).simulate_step(&model);
    let on_pcie = step(SecureMode::TensorTee, 4);
    assert!(
        on_slow.comm_w > on_pcie.comm_w,
        "1 GB/s ring must dominate the weight path: {} vs {}",
        on_slow.comm_w,
        on_pcie.comm_w
    );
    assert!(on_slow.total() > on_pcie.total());
}

#[test]
fn faster_fabric_shrinks_the_all_reduce_phase() {
    let grad = by_name("GPT2-M").unwrap().grad_bytes();
    let pcie = RingAllReduce::new(8, Interconnect::PcieP2p).direct(grad);
    let nvlink = RingAllReduce::new(8, Interconnect::NvlinkLike).direct(grad);
    assert!(nvlink.total() < pcie.total());
    assert_eq!(nvlink.wire_bytes(), pcie.wire_bytes(), "same schedule");
}
