//! Offline stand-in for the [`serde`](https://docs.rs/serde) crate.
//!
//! The build environment has no network access, so the real `serde` cannot
//! be fetched. The TensorTEE sources only use serde through
//! `#[derive(Serialize, Deserialize)]` attributes — no code path actually
//! serializes anything yet — so this crate provides the two derive macros
//! as no-ops. The moment a consumer needs real serialization (e.g. a report
//! exporter), replace the `vendor/serde` path dependency with the crates.io
//! crate; every derive site is already annotated correctly.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
