//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate implements the builder/bench surface the
//! `tee-bench` harness uses — `Criterion::default()`, `sample_size`,
//! `measurement_time`, `warm_up_time`, `bench_function`, `Bencher::iter`,
//! `black_box` and `final_summary` — backed by a simple wall-clock sampler:
//! each sample times a batch of iterations, and the per-bench report prints
//! min / median / mean of the per-iteration times.
//!
//! It honors `--bench` (ignored filter) and exits immediately under
//! `--test`, which is what `cargo test` passes to `harness = false` bench
//! targets, so test runs never pay for benchmark measurement.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// The benchmark driver. Mirrors criterion's builder API.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    completed: Vec<(String, Duration)>,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode,
            completed: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the wall-clock budget for the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark: warm-up to estimate iteration cost, then
    /// `sample_size` timed batches within the measurement budget.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.test_mode {
            // `cargo test` smoke-runs bench targets: execute one iteration
            // so the closure is exercised, but skip all measurement.
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            eprintln!("test {id} ... ok");
            return self;
        }

        // Warm-up: run batches until the budget elapses, tracking the mean
        // iteration time to size measurement batches.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        let mut batch = 1u64;
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher {
                iters: batch,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            iters_done += batch;
            batch = (batch * 2).min(1 << 20);
        }
        let per_iter = if iters_done > 0 {
            warm_start.elapsed() / iters_done.max(1) as u32
        } else {
            Duration::from_millis(1)
        };

        // Measurement: split the budget into sample_size batches.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed / iters_per_sample as u32);
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        eprintln!(
            "{id:<44} time: [min {} median {} mean {}] ({} samples x {} iters)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            self.sample_size,
            iters_per_sample,
        );
        self.completed.push((id.to_string(), median));
        self
    }

    /// Prints the end-of-run summary (criterion's `final_summary`).
    pub fn final_summary(&mut self) {
        if self.test_mode {
            return;
        }
        eprintln!(
            "---- benchmark summary ({} benches) ----",
            self.completed.len()
        );
        for (id, median) in &self.completed {
            eprintln!("  {id:<44} median {}", fmt_duration(*median));
        }
    }
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, accumulating into this sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_bench_run() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        assert!(ran);
        c.final_summary();
    }

    #[test]
    fn format_covers_magnitudes() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
