//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `None` for ~25% of cases and `Some(inner)` otherwise,
/// matching the real crate's default weighting.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S>(S);

/// Generates `Option<T>` values from an inner strategy.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn yields_both_variants() {
        let mut rng = TestRng::from_seed(6);
        let strat = of(any::<u64>());
        let draws: Vec<_> = (0..64).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().any(Option::is_none));
    }
}
