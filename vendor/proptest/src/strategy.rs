//! The [`Strategy`] trait and the built-in strategies for integer ranges
//! and tuples.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for generating values of one type.
///
/// The real proptest `Strategy` produces a *value tree* supporting
/// shrinking; this offline stand-in generates plain values directly. Every
/// strategy is deterministic given the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Blanket impl so `&strategy` is itself a strategy (mirrors proptest,
/// where strategies are frequently passed by reference).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    rng.next_u64() as $ty
                } else {
                    lo.wrapping_add(rng.below(span) as $ty)
                }
            }
        }

        impl Strategy for RangeFrom<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (<$ty>::MAX as u64).wrapping_sub(self.start as u64).wrapping_add(1);
                if span == 0 {
                    rng.next_u64() as $ty
                } else {
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A strategy that always yields clones of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (1u8..=255).generate(&mut rng);
            assert!(w >= 1);
            let x = (5usize..).generate(&mut rng);
            assert!(x >= 5);
        }
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = TestRng::from_seed(2);
        // 0..=u64::MAX has a 2^64 span; must not panic or bias to zero.
        let mut any_nonzero = false;
        for _ in 0..10 {
            any_nonzero |= (0u64..=u64::MAX).generate(&mut rng) != 0;
        }
        assert!(any_nonzero);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::from_seed(3);
        let (a, b) = (0u64..10, 10u64..20).generate(&mut rng);
        assert!(a < 10 && (10..20).contains(&b));
    }
}
