//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specification accepted by [`vec()`]: an exact length, `lo..hi`, or
/// `lo..=hi` (mirrors proptest's `SizeRange` conversions).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a length drawn from
/// a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element` and whose length is
/// drawn from `size` (an exact `usize`, `lo..hi`, or `lo..=hi`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_seed(5);
        assert_eq!(vec(any::<u8>(), 64).generate(&mut rng).len(), 64);
        for _ in 0..100 {
            let v = vec(any::<u8>(), 1..50).generate(&mut rng);
            assert!((1..50).contains(&v.len()));
        }
    }
}
