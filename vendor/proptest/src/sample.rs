//! Sampling helpers (`proptest::sample::Index`).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A position into a collection whose length is not known at generation
/// time. Generated via `any::<Index>()`, then projected onto a concrete
/// length with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Maps this abstract index onto a collection of `len` elements.
    ///
    /// # Panics
    /// Panics if `len == 0`, as there is no valid index.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for len in [1usize, 2, 7, 199] {
            let idx = Index::arbitrary(&mut rng);
            assert!(idx.index(len) < len);
        }
    }
}
