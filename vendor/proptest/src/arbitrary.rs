//! `any::<T>()` — the "whole domain of `T`" strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain generation strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

/// The strategy generating any value of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! arbitrary_tuples {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )*};
}

arbitrary_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_and_tuples_generate() {
        let mut rng = TestRng::from_seed(4);
        let block: [u8; 16] = Arbitrary::arbitrary(&mut rng);
        let wide: [u8; 32] = Arbitrary::arbitrary(&mut rng);
        assert!(block.iter().chain(wide.iter()).any(|&b| b != 0));
        let _: (u64, bool) = Arbitrary::arbitrary(&mut rng);
    }
}
