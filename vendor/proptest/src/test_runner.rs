//! Deterministic test-runner plumbing: the RNG, the per-suite
//! configuration, and the error type threaded through `prop_assert!`.

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated; carries the formatted assertion message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject(&'static str),
}

/// SplitMix64 — tiny, fast, and deterministic. The same generator the
/// simulator substrate uses (`tee_sim::rng`), duplicated here so the test
/// harness has no dependencies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose entire stream is a function of `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is ≤ bound/2^64 — irrelevant for test generation.
        self.next_u64() % bound
    }

    /// Uniform usize in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }
}

/// Per-suite configuration, mirroring the fields of the real
/// `proptest::test_runner::Config` that this repository relies on.
///
/// Resolution order for both knobs: explicit field value, then environment
/// variable (`PROPTEST_CASES` / `PROPTEST_RNG_SEED`), then the default.
/// Seeds are *always* deterministic: the fallback seed is derived from the
/// test function's name, never from the wall clock.
#[derive(Debug, Clone, Default)]
pub struct ProptestConfig {
    /// Number of cases to generate per property. `0` means "use the
    /// `PROPTEST_CASES` env var or the built-in default of 64".
    pub cases: u32,
    /// Optional pinned RNG seed shared by every property in the suite.
    /// `None` derives a stable per-test seed from the test name.
    pub rng_seed: Option<u64>,
}

impl ProptestConfig {
    /// Built-in case count when neither the config nor the environment pins
    /// one.
    pub const DEFAULT_CASES: u32 = 64;

    /// A config running `cases` cases (seed still derived per-test).
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }

    /// The shared CI configuration used by every per-crate `prop.rs` suite:
    /// deterministic per-test seeds and an explicitly pinned case count.
    /// This is *the* knob for tuning CI property-test depth — edit the
    /// pinned count here and every suite follows. `PROPTEST_CASES` /
    /// `PROPTEST_RNG_SEED` still override at run time so a regression line
    /// can be replayed exactly (see `proptest-regressions/README.md`).
    pub fn ci() -> Self {
        Self::with_cases(Self::DEFAULT_CASES)
    }

    /// The case count after applying the environment override. The env var
    /// is a run-time operator action (replay, deeper soak), so it wins over
    /// the suite's pinned baseline.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(n) if n > 0 => n,
            _ if self.cases > 0 => self.cases,
            _ => Self::DEFAULT_CASES,
        }
    }

    /// The RNG seed after applying the environment override; falls back to
    /// an FNV-1a hash of the test name so every property gets a distinct
    /// but reproducible stream.
    pub fn resolved_seed(&self, test_name: &str) -> u64 {
        if let Some(seed) = self.rng_seed {
            return seed;
        }
        if let Ok(raw) = std::env::var("PROPTEST_RNG_SEED") {
            let parsed = raw
                .strip_prefix("0x")
                .map(|hex| u64::from_str_radix(hex, 16))
                .unwrap_or_else(|| raw.parse());
            if let Ok(seed) = parsed {
                return seed;
            }
        }
        fnv1a(test_name.as_bytes())
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        let cfg = ProptestConfig::default();
        assert_ne!(cfg.resolved_seed("alpha"), cfg.resolved_seed("beta"));
        assert_eq!(cfg.resolved_seed("alpha"), cfg.resolved_seed("alpha"));
    }

    #[test]
    fn ci_pins_the_baseline_case_count() {
        assert_eq!(ProptestConfig::ci().cases, ProptestConfig::DEFAULT_CASES);
    }

    #[test]
    fn pinned_seed_wins() {
        let cfg = ProptestConfig {
            rng_seed: Some(7),
            ..ProptestConfig::default()
        };
        assert_eq!(cfg.resolved_seed("anything"), 7);
    }
}
