//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment for this repository has no network access, so the
//! real crates.io `proptest` cannot be fetched. This crate re-implements the
//! slice of its surface that the TensorTEE test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * `any::<T>()` for primitive integers, `bool`, byte arrays, tuples and
//!   [`sample::Index`],
//! * integer range strategies (`lo..hi`, `lo..=hi`, `lo..`),
//! * [`collection::vec`] and [`option::of`].
//!
//! Unlike the real crate there is **no shrinking**: a failing case reports
//! the RNG seed and case index, which — because generation is a pure
//! function of the seed — is already a minimal reproduction recipe. Runs are
//! fully deterministic: the seed is derived from the test name unless pinned
//! via [`ProptestConfig`] or the `PROPTEST_RNG_SEED` environment variable,
//! and the case count defaults to 64 (override with `PROPTEST_CASES`).
//! Failures print a `proptest-regressions/`-style line so they can be
//! replayed and checked in (see `proptest-regressions/README.md` at the
//! workspace root).

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything a `proptest!` test module normally imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests.
///
/// Mirrors the real macro's grammar for the forms used in this repository:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0u64..100, v in vec(any::<u8>(), 1..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __seed = __config.resolved_seed(stringify!($name));
                let __cases = __config.resolved_cases();
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                for __case in 0..__cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest case {}/{} failed: {}\n\
                                 # regression line (append to proptest-regressions/, see its README):\n\
                                 # {} seed=0x{:016x} case={}\n\
                                 # replay: PROPTEST_RNG_SEED=0x{:016x} PROPTEST_CASES={} cargo test {}",
                                __case + 1, __cases, __msg,
                                stringify!($name), __seed, __case,
                                __seed, __cases, stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the failing
/// case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} at {}:{}", format_args!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            __l, __r, format_args!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            __l, __r, format_args!($($fmt)+)
        );
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
