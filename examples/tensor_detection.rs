//! Watch TenAnalyzer learn tensor structures (§4.2, §6.2, Figure 18).
//!
//! Runs the Adam optimizer under TensorTEE with a *cold* Meta Table and
//! prints the per-iteration hit rates, then runs the tiled-GEMM detection
//! experiment of §6.2.
//!
//! ```sh
//! cargo run --release --example tensor_detection
//! ```

use tensortee::experiments::{fig18_hit_rate, sec62_gemm_detection};
use tensortee::RunContext;

fn main() {
    let mut ctx = RunContext::full();
    ctx.hit_iterations = 12;

    println!("Meta Table hit rate vs. iteration (Figure 18), cold start:\n");
    let (rows, report) = fig18_hit_rate(&ctx);
    println!("{}", report.to_markdown());
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        println!(
            "hit_in grew from {:.0}% to {:.0}% — detection converged.\n",
            first.hit_in * 100.0,
            last.hit_in * 100.0
        );
    }

    println!("Tiled GEMM detection (§6.2): 256x256 matrix, 64x64 tiles.");
    let (rate, report) = sec62_gemm_detection(&ctx);
    println!("{}", report.to_markdown());
    assert!(rate > 0.9, "detection should converge");
    println!("Entry merging assembled complete 2-D tensor structures from");
    println!("row-granularity detections (Figure 11).");
}
