//! Inference serving walkthrough: continuous batching with KV-cache
//! TEE residency on one NPU.
//!
//! ```sh
//! cargo run --release --example serving [rate_rps] [seed]
//! ```
//!
//! Prints (1) the trace shape and the KV budget forcing HBM↔DRAM
//! migration, (2) the per-mode serving comparison on the same trace
//! (TTFT/TPOT/p99/goodput and exposed KV-migration time), and (3) the
//! registered `serve_sweep` load/burstiness table.

use tee_serve::{simulate, KvSpec, ServeConfig, TraceConfig};
use tensortee::experiments::{serve_latency, serve_profile, serve_sweep};
use tensortee::{RunContext, SecureMode};

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("rate_rps must be a positive number"))
        .unwrap_or(8.0);
    let seed: u64 = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("seed must be a u64"))
        .unwrap_or(42);

    let ctx = RunContext::full().with_seed(seed);
    let model = ctx.primary_model();
    let kv = KvSpec::of(&model);
    let trace_cfg = TraceConfig::poisson(32, rate, seed);
    let trace = trace_cfg.generate();
    let cfg = ServeConfig::for_model(&model, 4, trace_cfg.steady_tokens());

    println!(
        "== Serving {} requests of {} at {rate} req/s (seed {seed}) ==\n",
        trace.len(),
        model.name
    );
    println!(
        "KV cache: {} per token ({} per steady request); HBM budget {} holds ~4 requests,\n\
         so sustained load spills KV to CPU DRAM and pays the mode's transfer protocol.\n",
        tee_sim::util::fmt_bytes(kv.bytes_per_token),
        tee_sim::util::fmt_bytes(kv.bytes_per_token * trace_cfg.steady_tokens()),
        tee_sim::util::fmt_bytes(cfg.kv_hbm_bytes),
    );

    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "mode", "completed", "TTFT p50", "TTFT p99", "goodput", "exposed KV", "KV offloads"
    );
    for mode in SecureMode::all() {
        let r = simulate(&cfg, &model, &serve_profile(mode), &trace);
        println!(
            "{:<12} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
            mode.label(),
            format!("{}/{}", r.completed_requests, r.total_requests),
            r.ttft_percentile(0.50)
                .unwrap_or(tee_sim::Time::ZERO)
                .to_string(),
            r.ttft_percentile(0.99)
                .unwrap_or(tee_sim::Time::ZERO)
                .to_string(),
            format!("{:.0} tok/s", r.goodput_tps()),
            r.kv_exposed_time.to_string(),
            r.kv_stats.get("offloads").to_string(),
        );
    }
    println!(
        "\nThe staging protocol (SGX+MGX) re-encrypts every KV migration at the \u{a7}3.3\n\
         conversion edges and serializes it against decode; the direct protocol\n\
         (TensorTEE) hides the same bytes behind the iteration's compute.\n"
    );

    println!("== Registered artifacts on the same seed ==\n");
    let (_, report) = serve_latency(&ctx);
    println!("{}", report.to_markdown());
    let (_, report) = serve_sweep(&ctx);
    println!("{}", report.to_markdown());
    println!("Reproduce from the CLI: `tensortee run serve_latency serve_sweep --seed {seed}`.");
}
