//! Attack demo: mounts the threat-model attacks (§2.4) against the
//! functional simulators and shows each one being detected.
//!
//! 1. Bus snooping — the adversary sees only ciphertext.
//! 2. Ciphertext tampering — caught by the (tensor) MAC.
//! 3. Replay of stale data — caught by the VN / Merkle tree.
//! 4. Tampered NPU tensor — poison bit blocks the communication barrier.
//! 5. Forged trusted-channel metadata — rejected by the channel MAC.
//! 6. Evil enclave image — fails attestation.
//! 7. Traffic analysis — encryption hides contents, not shape: the
//!    wire still leaks bits (tee-attack), until shaping erases them.
//!
//! ```sh
//! cargo run --release --example attack_demo
//! ```

use tee_comm::channel::TransferMeta;
use tee_crypto::Key;
use tee_npu::verify::PoisonTracker;
use tee_npu::NpuMemory;
use tensortee::SecureSession;

fn main() {
    println!("TensorTEE attack demo — every attack below must be detected.\n");

    // Establish the CPU/NPU session (attestation + Diffie–Hellman).
    let session = SecureSession::establish(Key::from_seed(0xD00D), b"cpu image", b"npu image", 7)
        .expect("attestation succeeds for genuine enclaves");
    println!("[setup] mutual attestation + key exchange complete");

    let mut npu = NpuMemory::new(session.key());
    let secret: Vec<u8> = (0..4096u32).map(|i| (i * 2654435761) as u8).collect();
    npu.write_tensor(0x10000, &secret);

    // 1. Bus snooping.
    let snooped = npu.gddr_mut().snoop(0x10000);
    assert_ne!(&snooped[..], &secret[..64], "plaintext must not leak");
    println!("[1] bus snoop sees ciphertext only            ... OK");

    // 2. Tampering.
    npu.gddr_mut().tamper_byte(0x10000 + 512, 3, 0x40);
    let err = npu.read_tensor(0x10000).expect_err("tamper must be caught");
    println!("[2] single-bit tamper detected ({err})    ... OK");
    // Restore.
    npu.gddr_mut().tamper_byte(0x10000 + 512, 3, 0x40);
    npu.read_tensor(0x10000).expect("restored tensor verifies");

    // 3. Replay.
    let stale: Vec<[u8; 64]> = (0..64)
        .map(|l| npu.gddr_mut().capture(0x10000 + l * 64))
        .collect();
    let fresh: Vec<u8> = secret.iter().map(|b| b.wrapping_add(1)).collect();
    npu.write_tensor(0x10000, &fresh);
    for (l, line) in stale.iter().enumerate() {
        npu.gddr_mut().replay(0x10000 + (l as u64) * 64, *line);
    }
    let err = npu.read_tensor(0x10000).expect_err("replay must be caught");
    println!("[3] stale-data replay detected ({err})    ... OK");

    // 4. Delayed verification + poison barrier.
    let mut clean = NpuMemory::new(session.key());
    clean.write_tensor(0x20000, &secret);
    clean.gddr_mut().tamper_byte(0x20000, 0, 0xFF);
    let mut poison = PoisonTracker::new(512);
    let (data, verdict) = clean.read_tensor_deferred(0x20000);
    poison.load_unverified(0x20000);
    // Compute proceeds on unverified data (that is the point of delayed
    // verification) and the taint propagates to the output tensor.
    let _ = data;
    poison.compute(&[0x20000], 0x30000);
    assert!(poison.barrier(&[0x30000]).is_err(), "barrier must block");
    match verdict {
        Ok(()) => unreachable!("tampered tensor cannot verify"),
        Err(e) => poison.verification_failed(e.base),
    }
    poison.compute(&[0x20000], 0x30000); // taint propagates from failure
    let blocked = poison.barrier(&[0x30000]).expect_err("abort before comm");
    println!("[4] poisoned tensor blocked at barrier ({blocked}) ... OK");

    // 5. Forged metadata on the trusted channel.
    let meta = TransferMeta {
        base: 0x10000,
        bytes: 4096,
        vn: 2,
        mac: tee_crypto::MacTag::from_raw(0xABCD),
    };
    let mut sealed = session.cpu_channel().seal(&meta, 0);
    sealed.tamper(20, 0x01); // try to lower the VN in flight
    let err = session
        .npu_channel()
        .open(&sealed, 0)
        .expect_err("forged metadata must be rejected");
    println!("[5] forged trusted-channel packet rejected ({err}) ... OK");

    // 6. Evil enclave fails attestation.
    let cpu_ok = tee_crypto::EnclaveIdentity::measure("cpu", b"cpu image", Key::from_seed(0xD00D));
    let evil = tee_crypto::EnclaveIdentity::measure("npu", b"EVIL image", Key::from_seed(0xD00D));
    let report = evil.report(99);
    let err = report
        .verify(&cpu_ok.measurement(), 99, Key::from_seed(0xD00D))
        .expect_err("wrong measurement must fail");
    println!("[6] evil enclave image fails attestation ({err}) ... OK");

    // 7. Traffic analysis: the one attack the crypto above does NOT
    // stop. A serving run under full TensorTEE protection still shows
    // its shape on the wire; constant-rate shaping (priced as padding
    // time) is what actually erases it.
    let model = tee_workloads::zoo::by_name("GPT2-M").expect("Table-2 model");
    let cfg = tee_serve::ServeConfig::for_model(&model, 4, 640);
    let trace = tee_serve::TraceConfig::poisson(12, 16.0, 42).generate();
    let probe = tee_sim::probe::SharedProbe::recording();
    tee_serve::simulate_probed(
        &cfg,
        &model,
        &tee_serve::SecurityProfile::tensor_tee(),
        &trace,
        &probe,
    );
    let view = tee_attack::Observation::from_trace(&probe.snapshot().expect("recording"));
    let raw = tee_attack::extractable_bits(&view.features(tee_attack::MEASUREMENT_QUANTUM));
    let shaped = tee_attack::Shaping::ConstantRate.apply(&view);
    let flat =
        tee_attack::extractable_bits(&shaped.observation.features(tee_attack::MEASUREMENT_QUANTUM));
    assert!(raw > 0.0 && flat == 0.0, "shaping must erase the channel");
    println!(
        "[7] wire shape leaks {raw:.2} bits/transfer despite encryption; \
         constant-rate shaping -> {flat:.2} bits for {} padding ... OK",
        shaped.padding
    );

    println!("\nAll attacks detected or priced. The enclave boundary held.");
}
