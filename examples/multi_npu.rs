//! Multi-NPU data-parallel training walkthrough: scaling one ZeRO-Offload
//! step from 1 to N NPUs with secure ring all-reduce gradient aggregation.
//!
//! ```sh
//! cargo run --release --example multi_npu [n_npus]
//! ```
//!
//! Prints (1) the ring all-reduce cost under each protocol, (2) the
//! two-stream overlap timeline for the direct protocol, and (3) the
//! strong-scaling table across 1/2/4/8 NPUs for SGX+MGX vs TensorTEE.

use tee_comm::ring::{Interconnect, RingAllReduce};
use tee_comm::schedule::Timeline;
use tee_sim::Time;
use tee_workloads::zoo::by_name;
use tensortee::experiments::scaling_strong;
use tensortee::{ClusterConfig, ClusterSystem, RunContext, SecureMode, SystemConfig};

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("n_npus must be a positive integer"))
        .unwrap_or(4);
    assert!(n >= 1, "need at least one NPU");

    let cfg = SystemConfig::default();
    let model = by_name("GPT2-M").expect("Table-2 model");
    let grad = model.grad_bytes();
    let ic = Interconnect::default();

    println!(
        "== Ring all-reduce of {} of gradients across {n} NPUs ({}) ==\n",
        tee_sim::util::fmt_bytes(grad),
        ic.label()
    );
    let ring = RingAllReduce::new(n, ic);
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>14}",
        "protocol", "total", "re-encryption", "bus", "decryption"
    );
    for (label, b) in [
        ("plain", ring.plain(grad)),
        ("staged", ring.staged(grad)),
        ("direct", ring.direct(grad)),
    ] {
        println!(
            "{label:<10} {:>12} {:>14} {:>14} {:>14}",
            b.total().to_string(),
            b.re_encryption.to_string(),
            b.comm.to_string(),
            b.decryption.to_string()
        );
    }
    println!(
        "\neach rank wires {} = 2*(N-1)/N of the gradient buffer\n",
        tee_sim::util::fmt_bytes(ring.direct(grad).wire_bytes())
    );

    println!("== One data-parallel step, N={n}, TensorTEE ==\n");
    let mut sys = ClusterSystem::new(cfg.clone(), ClusterConfig::of(n), SecureMode::TensorTee);
    let b = sys.simulate_step(&model);
    let ar = sys.all_reduce_cost(grad);
    // Figure-15-style two-stream picture: the collective hides inside the
    // backward window.
    let bwd = Time::from_ps(b.npu.as_ps() * 2 / 3);
    let fwd = b.npu - bwd;
    let mut t = Timeline::new();
    t.push(0, "fwd", Time::ZERO, fwd);
    t.push(0, "bwd", fwd, b.npu);
    t.push(1, "all-reduce", fwd, fwd + ar.total());
    println!("{}\n", t.render(64));
    println!(
        "phases: npu={} cpu={} comm_w={} comm_g={} comm_ar={}  (total {})",
        b.npu,
        b.cpu,
        b.comm_w,
        b.comm_g,
        b.comm_ar,
        b.total()
    );
    println!(
        "exposed communication: {:.1}% of the step\n",
        b.exposed_comm_fraction() * 100.0
    );

    println!("== Strong scaling across the cluster (this runs 8 full-step simulations) ==\n");
    let ctx = RunContext::full()
        .with_models(vec![model])
        .with_modes(vec![SecureMode::SgxMgx, SecureMode::TensorTee]);
    let (_, report) = scaling_strong(&ctx);
    println!("{}", report.to_markdown());
    println!(
        "\nNote the shape: staging pays the \u{a7}3.3 conversion on every ring hop, so its\n\
         exposed-comm share climbs until extra NPUs make the step slower; the direct\n\
         protocol keeps the collective hidden behind backward and keeps scaling."
    );
}
