//! NPU MAC-granularity exploration (Figure 20): sweep the protected block
//! size from 64 B to 4 KB and compare against TensorTEE's per-tensor MAC
//! with delayed verification.
//!
//! ```sh
//! cargo run --release --example mac_granularity
//! ```

use tensortee::experiments::fig20_mac_granularity;
use tensortee::RunContext;

fn main() {
    let ctx = RunContext::full();
    println!("NPU MAC granularity sweep (Figure 20), GPT2-M layer mix:\n");
    let (rows, report) = fig20_mac_granularity(&ctx);
    println!("{}", report.to_markdown());
    let best_block = rows
        .iter()
        .filter(|r| r.label != "tensor-delayed")
        .min_by(|a, b| a.slowdown.total_cmp(&b.slowdown))
        .expect("non-empty sweep");
    let ours = rows
        .iter()
        .find(|r| r.label == "tensor-delayed")
        .expect("tensor scheme present");
    println!(
        "Best fixed granularity: {} at {:.3}x slowdown with {:.1}% storage overhead.",
        best_block.label,
        best_block.slowdown,
        best_block.storage * 100.0
    );
    println!(
        "TensorTEE delayed verification: {:.3}x slowdown with ~zero off-chip storage.",
        ours.slowdown
    );
    println!("\nShape to expect (paper §6.3): fine granularity pays extra traffic,");
    println!("coarse granularity pays verification stalls (13% at 4 KB in the paper),");
    println!("and the per-tensor delayed scheme sits near the non-secure baseline (2.5%).");
}
