//! Design-space exploration walkthrough: sweep the hardware/security
//! knob space, read the Pareto frontier, and rank the knobs by
//! sensitivity.
//!
//! ```sh
//! cargo run --release --example explore [points] [threads]
//! ```
//!
//! Builds the training-scenario space (model x batch x PCIe x HBM x PE
//! array x MGX MAC granularity), prices a seeded Latin-hypercube sample
//! through the full training-step simulator under all three security
//! modes in parallel, and prints (1) the sampling plan, (2) the global
//! and secure-modes Pareto frontiers with the crossover analysis, and
//! (3) the per-mode tornado tables. The same sweep is scriptable as
//! `tensortee explore train` and registered as the `explore_pareto` /
//! `explore_sensitivity` artifacts.

use tensortee::artifact::RunContext;
use tensortee::explore::{explore_pareto_for, explore_sensitivity_for, space_for, Scenario};

fn main() {
    let points: u32 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("points must be a positive integer"))
        .unwrap_or(32);
    let threads: u32 = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("threads must be a positive integer"))
        .unwrap_or(4);

    // The reduced context keeps the walkthrough in seconds; swap in
    // RunContext::full() for the paper-fidelity sweep.
    let ctx = RunContext::fast()
        .with_explore_points(points)
        .with_worker_threads(threads);

    let space = space_for(Scenario::Train, &ctx);
    println!("== The training design space ==\n");
    for knob in space.knobs() {
        let labels: Vec<&str> = knob.levels.iter().map(|l| l.label.as_str()).collect();
        println!("{:<12} {}", knob.name, labels.join(" | "));
    }
    println!(
        "\n{} grid points; sampling {} of them (seeded Latin hypercube), \
         pricing 3 modes each on {} worker threads.\n",
        space.size(),
        ctx.explore_points,
        ctx.worker_threads
    );

    let (run, pareto) = explore_pareto_for(Scenario::Train, &ctx);
    println!("{}", pareto.to_markdown());
    println!(
        "({} evaluations total; results are byte-identical for any --threads value.)\n",
        run.flat().len()
    );

    let (_, sensitivity) = explore_sensitivity_for(Scenario::Train, &ctx);
    println!("{}", sensitivity.to_markdown());
    println!(
        "Reproduce from the CLI: `tensortee explore train --points {points} --threads {threads}` \
         (add --json for the machine-readable report)."
    );
}
