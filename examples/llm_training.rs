//! End-to-end secure LLM training sweep: every Table-2 model under all
//! three configurations, reproducing the Figure-16 comparison, plus the
//! Figure-17 phase breakdown for a chosen model.
//!
//! ```sh
//! cargo run --release --example llm_training [model-name]
//! ```

use tee_workloads::zoo::{by_name, TABLE2};
use tensortee::experiments::{fig16_overall, fig17_breakdown};
use tensortee::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let arg = std::env::args().nth(1);

    match arg {
        Some(name) => {
            let model = by_name(&name).unwrap_or_else(|| {
                eprintln!(
                    "unknown model {name:?}; available: {}",
                    TABLE2.iter().map(|m| m.name).collect::<Vec<_>>().join(", ")
                );
                std::process::exit(1);
            });
            println!("Phase breakdown for {} (Figure 17):\n", model.name);
            println!("{}", fig17_breakdown(&cfg, &[model]));
        }
        None => {
            println!("Overall performance across the Table-2 zoo (Figure 16).");
            println!("This runs 12 models x 3 configurations; expect a few minutes.\n");
            let (_, md) = fig16_overall(&cfg, &TABLE2);
            println!("{md}");
        }
    }
}
