//! End-to-end secure LLM training sweep: every Table-2 model under all
//! three configurations, reproducing the Figure-16 comparison, plus the
//! Figure-17 phase breakdown for a chosen model.
//!
//! ```sh
//! cargo run --release --example llm_training [model-name]
//! ```

use tee_workloads::zoo::{by_name, TABLE2};
use tensortee::artifact::find;
use tensortee::RunContext;

fn main() {
    let arg = std::env::args().nth(1);

    match arg {
        Some(name) => {
            let model = by_name(&name).unwrap_or_else(|| {
                eprintln!(
                    "unknown model {name:?}; available: {}",
                    TABLE2.iter().map(|m| m.name).collect::<Vec<_>>().join(", ")
                );
                std::process::exit(1);
            });
            // Narrow the context to one model; the fig17 artifact does
            // the mode sweep.
            let ctx = RunContext::full().with_models(vec![model]);
            let report = find("fig17").expect("registered").run(&ctx);
            println!("Phase breakdown for {} (Figure 17):\n", model.name);
            println!("{}", report.to_markdown());
        }
        None => {
            println!("Overall performance across the Table-2 zoo (Figure 16).");
            println!("This runs 12 models x 3 configurations; expect a few minutes.\n");
            let report = find("fig16").expect("registered").run(&RunContext::full());
            println!("{}", report.to_markdown());
        }
    }
}
