//! Quickstart: simulate one secure ZeRO-Offload training step of GPT2-M
//! under all three configurations and print the comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tensortee::RunContext;

fn main() {
    let ctx = RunContext::full();
    println!("TensorTEE quickstart — Table 1 configuration:\n");
    println!("{}\n", ctx.cfg.table1_markdown());

    let model = ctx.primary_model();
    println!(
        "Model: {} ({} params nominal, batch {})\n",
        model.name, model.nominal_params, model.batch_size
    );

    // One step under every mode; the context owns the mode loop.
    let sweep = ctx.step_sweep(&model);
    let reference = sweep[0].1.total();
    for (i, (mode, step)) in sweep.iter().enumerate() {
        let total = step.total();
        let vs = if i == 0 {
            String::from("(reference)")
        } else {
            format!(
                "({:.2}x non-secure)",
                total.as_secs_f64() / reference.as_secs_f64()
            )
        };
        let shares: Vec<String> = step
            .ledger()
            .fractions()
            .into_iter()
            .map(|(label, f)| format!("{label} {:.1}%", f * 100.0))
            .collect();
        println!(
            "{:<11} latency/batch = {:<12} {}\n             breakdown: {}",
            mode.label(),
            total.to_string(),
            vs,
            shares.join(" | "),
        );
    }
    println!("\nExpected shape (paper §6.1): SGX+MGX several times slower than");
    println!("non-secure, TensorTEE within a few percent of non-secure.");
}
