//! Quickstart: simulate one secure ZeRO-Offload training step of GPT2-M
//! under all three configurations and print the comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tee_workloads::zoo::by_name;
use tensortee::{SecureMode, SystemConfig, TrainingSystem};

fn main() {
    let cfg = SystemConfig::default();
    println!("TensorTEE quickstart — Table 1 configuration:\n");
    println!("{}\n", cfg.table1_markdown());

    let model = by_name("GPT2-M").expect("Table-2 model");
    println!(
        "Model: {} ({} params nominal, batch {})\n",
        model.name, model.nominal_params, model.batch_size
    );

    let mut reference = None;
    for mode in SecureMode::all() {
        let mut system = TrainingSystem::new(cfg.clone(), mode);
        let step = system.simulate_step(&model);
        let total = step.total();
        let (npu, cpu, w, g) = step.fractions();
        let vs = match reference {
            None => {
                reference = Some(total);
                String::from("(reference)")
            }
            Some(r) => format!("({:.2}x non-secure)", total.as_secs_f64() / r.as_secs_f64()),
        };
        println!(
            "{:<11} latency/batch = {:<12} {}\n             breakdown: NPU {:.1}% | CPU {:.1}% | comm W {:.1}% | comm G {:.1}%",
            mode.label(),
            total.to_string(),
            vs,
            npu * 100.0,
            cpu * 100.0,
            w * 100.0,
            g * 100.0,
        );
    }
    println!("\nExpected shape (paper §6.1): SGX+MGX several times slower than");
    println!("non-secure, TensorTEE within a few percent of non-secure.");
}
