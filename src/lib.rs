//! Root package of the TensorTEE reproduction workspace.
//!
//! The library surface lives in the [`tensortee`] crate and its substrate
//! crates (`tee-sim`, `tee-crypto`, `tee-mem`, `tee-cpu`, `tee-npu`,
//! `tee-comm`, `tee-workloads`). This root package exists to host the
//! runnable `examples/` and the cross-crate integration tests in `tests/`.

pub use tensortee;
