//! Root package of the TensorTEE reproduction workspace.
//!
//! The library surface lives in the [`tensortee`] crate and its substrate
//! crates (`tee-sim`, `tee-crypto`, `tee-mem`, `tee-cpu`, `tee-npu`,
//! `tee-comm`, `tee-workloads`). This root package exists to host the
//! runnable `examples/`, the cross-crate integration tests in `tests/`,
//! and the `tensortee` CLI (`src/bin/tensortee.rs`) that drives the
//! paper-artifact registry (`list` / `run <id> [--json] [--fast]` /
//! `run --all`).

pub use tensortee;
