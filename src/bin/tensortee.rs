//! `tensortee` — the CLI driver for the paper-artifact registry.
//!
//! ```sh
//! tensortee list                         # all registered artifacts
//! tensortee run fig16                    # one artifact, markdown
//! tensortee run fig16 fig21 --json      # several artifacts, JSON array
//! tensortee run --all --fast --json     # whole registry, reduced context
//! ```
//!
//! `--fast` swaps the full paper-fidelity [`RunContext`] for the reduced
//! one (coarser simulation scale, GPT/GPT2-M model pair, thinned sweeps);
//! `--json` switches from markdown to the machine-readable report shape
//! documented in EXPERIMENTS.md. Every run is deterministic: the same
//! invocation produces byte-identical output.

use std::process::ExitCode;
use tensortee::artifact::{find, registry, Artifact, RunContext};
use tensortee::json::Json;
use tensortee::report::Table;

const USAGE: &str = "usage: tensortee <command>

commands:
  list                          list registered artifacts
  run <id>... [--json] [--fast] [--seed <u64>] run specific artifacts
  run --all [--json] [--fast] [--seed <u64>]   run the whole registry

flags:
  --json        emit machine-readable JSON instead of markdown
  --fast        reduced context: coarser sim scale, fewer models/sweep points
  --seed <u64>  seed for stochastic artifacts (serving traces); default 42";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// `tensortee list`: one row per registered artifact.
fn list() {
    let mut table = Table::new(["id", "paper anchor", "title", "claim reproduced"]);
    for a in registry() {
        table.row([a.id, a.paper_anchor, a.title, a.claim]);
    }
    println!("{}", table.to_markdown());
    println!(
        "{} artifacts; run one with `tensortee run <id>` (add --json / --fast).",
        registry().len()
    );
}

/// `tensortee run ...`: resolve the artifact selection, run, print.
fn run(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut fast = false;
    let mut all = false;
    let mut seed: Option<u64> = None;
    let mut ids: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fast" => fast = true,
            "--all" => all = true,
            "--seed" => {
                let Some(value) = it.next() else {
                    eprintln!("--seed needs a value\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                match value.parse::<u64>() {
                    Ok(s) => seed = Some(s),
                    Err(_) => {
                        eprintln!("--seed takes a u64, got {value:?}\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
            id => ids.push(id),
        }
    }
    let selection: Vec<Artifact> = if all {
        if !ids.is_empty() {
            eprintln!("--all and explicit ids are mutually exclusive\n\n{USAGE}");
            return ExitCode::from(2);
        }
        registry().to_vec()
    } else if ids.is_empty() {
        eprintln!("run needs artifact ids or --all\n\n{USAGE}");
        return ExitCode::from(2);
    } else {
        let mut picked = Vec::new();
        for id in ids {
            match find(id) {
                Some(a) => picked.push(a),
                None => {
                    let known: Vec<&str> = registry().iter().map(|a| a.id).collect();
                    eprintln!("unknown artifact {id:?}; known ids: {}", known.join(", "));
                    return ExitCode::from(2);
                }
            }
        }
        picked
    };

    let mut ctx = if fast {
        RunContext::fast()
    } else {
        RunContext::full()
    };
    if let Some(seed) = seed {
        ctx = ctx.with_seed(seed);
    }
    let reports: Vec<_> = selection
        .iter()
        .map(|a| {
            if !json {
                eprintln!("running {} ({}) ...", a.id, a.paper_anchor);
            }
            a.run(&ctx)
        })
        .collect();

    if json {
        // One report → a single object; several → an array (the
        // `run --all --json` shape CI validates).
        let out = if reports.len() == 1 {
            reports[0].to_json()
        } else {
            Json::Array(reports.iter().map(|r| r.to_json()).collect())
        };
        println!("{out}");
    } else {
        for r in &reports {
            println!("{}", r.to_markdown());
        }
    }
    ExitCode::SUCCESS
}
