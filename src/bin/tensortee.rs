//! `tensortee` — the CLI driver for the paper-artifact registry.
//!
//! ```sh
//! tensortee list                         # all registered artifacts
//! tensortee run fig16                    # one artifact, markdown
//! tensortee run fig16 fig21 --json      # several artifacts, JSON array
//! tensortee run --all --fast --json     # whole registry, reduced context
//! tensortee explore train --points 64   # design-space sweep: frontier + tornado
//! ```
//!
//! `--fast` swaps the full paper-fidelity [`RunContext`] for the reduced
//! one (coarser simulation scale, GPT/GPT2-M model pair, thinned sweeps);
//! `--json` switches from markdown to the machine-readable report shape
//! documented in EXPERIMENTS.md. Every run is deterministic: the same
//! invocation produces byte-identical output — including `explore`,
//! whose `--threads` knob changes wall-clock but never a byte of output.

use std::process::ExitCode;
use tee_sim::probe::SharedProbe;
use tensortee::artifact::{find, registry, Artifact, RunContext};
use tensortee::explore::{explore_pareto_for, explore_sensitivity_for, Scenario};
use tensortee::json::Json;
use tensortee::obs::chrome_trace;
use tensortee::perf::{BenchOptions, BenchTrajectory};
use tensortee::report::{Report, Table};

/// The explore scenarios as a `train|cluster|serve|...` list, derived
/// from [`Scenario::all`] so the CLI text never drifts from the
/// registered scenarios.
fn scenario_list() -> String {
    Scenario::all().map(|s| s.label()).join("|")
}

/// The usage text (a function so the scenario list stays derived).
fn usage() -> String {
    format!(
        "usage: tensortee <command>

commands:
  list                          list registered artifacts
  run <id>... [flags]           run specific artifacts
  run --all [flags]             run the whole registry
  explore <{scenarios}> [flags]
                                sweep the scenario's hardware/security design
                                space: Pareto frontier + tornado sensitivity
  trace <id> [--out FILE]       run one artifact with a recording probe and
                                write a Chrome/Perfetto trace-event JSON
                                (default trace_<id>.json; load it at
                                ui.perfetto.dev or chrome://tracing)
  bench [flags]                 time every artifact + the explore sweeps;
                                writes BENCH_<rev>.json (or, with --json,
                                prints the same shape to stdout)

flags:
  --json         emit machine-readable JSON instead of markdown
  --fast         reduced context: coarser sim scale, fewer models/sweep points
  --quiet        suppress stderr progress chatter (stdout is unaffected)
  --trace        run/explore: also record a probe trace and write it to
                 --out (default trace.json); reports are byte-identical
                 with and without it
  --out <FILE>   where trace output is written
  --seed <u64>   seed for stochastic artifacts and sampling plans (default 42)
  --threads <N>  explorer worker threads (wall-clock only; output is
                 byte-identical for any N; default 4)
  --points <N>   explorer point budget (default 96, 32 under --fast)
  --repeats <N>  bench: timed repetitions per entry, reported as the
                 median (default 3)",
        scenarios = scenario_list()
    )
}

/// The flags shared by `run`, `explore` and `bench`, plus the positional
/// args.
struct Args {
    json: bool,
    fast: bool,
    all: bool,
    quiet: bool,
    trace: bool,
    out: Option<String>,
    seed: Option<u64>,
    threads: Option<u32>,
    points: Option<u32>,
    repeats: Option<u32>,
    positional: Vec<String>,
}

impl Args {
    /// Parses flags and positionals; `Err` carries the message to print.
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut out = Args {
            json: false,
            fast: false,
            all: false,
            quiet: false,
            trace: false,
            out: None,
            seed: None,
            threads: None,
            points: None,
            repeats: None,
            positional: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--json" => out.json = true,
                "--fast" => out.fast = true,
                "--all" => out.all = true,
                "--quiet" => out.quiet = true,
                "--trace" => out.trace = true,
                "--out" => out.out = Some(parse_value(arg, it.next())?),
                "--seed" => out.seed = Some(parse_value(arg, it.next())?),
                "--threads" => out.threads = Some(parse_value(arg, it.next())?),
                "--points" => out.points = Some(parse_value(arg, it.next())?),
                "--repeats" => out.repeats = Some(parse_value(arg, it.next())?),
                flag if flag.starts_with('-') => {
                    return Err(format!("unknown flag {flag:?}"));
                }
                positional => out.positional.push(positional.to_string()),
            }
        }
        // Zero is never a meaningful count for these: an empty sweep, a
        // zero-thread scope, or a median over no repetitions. Reject at
        // parse time instead of silently clamping (or dividing by zero).
        for (flag, value) in [
            ("--threads", out.threads),
            ("--points", out.points),
            ("--repeats", out.repeats),
        ] {
            if value == Some(0) {
                return Err(format!("{flag} must be at least 1"));
            }
        }
        Ok(out)
    }

    /// The [`RunContext`] these flags select.
    fn context(&self) -> RunContext {
        let mut ctx = if self.fast {
            RunContext::fast()
        } else {
            RunContext::full()
        };
        if let Some(seed) = self.seed {
            ctx = ctx.with_seed(seed);
        }
        if let Some(threads) = self.threads {
            ctx = ctx.with_worker_threads(threads);
        }
        if let Some(points) = self.points {
            ctx = ctx.with_explore_points(points);
        }
        ctx
    }
}

/// Parses a flag value, reporting the flag name on failure.
fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let value = value.ok_or_else(|| format!("{flag} needs a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag} got an invalid value {value:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        Some("explore") => explore(&args[1..]),
        Some("trace") => trace_cmd(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

/// Prints `message`, the usage, and returns the CLI error code.
fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\n\n{}", usage());
    ExitCode::from(2)
}

/// Renders `reports` the way both subcommands do: markdown per report, or
/// one JSON object (single report) / array (several).
fn emit(reports: &[Report], json: bool) {
    if json {
        let out = if reports.len() == 1 {
            reports[0].to_json()
        } else {
            Json::Array(reports.iter().map(|r| r.to_json()).collect())
        };
        println!("{out}");
    } else {
        for r in reports {
            println!("{}", r.to_markdown());
        }
    }
}

/// `tensortee list`: one row per registered artifact.
fn list() {
    let mut table = Table::new(["id", "paper anchor", "title", "claim reproduced"]);
    for a in registry() {
        table.row([a.id, a.paper_anchor, a.title, a.claim]);
    }
    println!("{}", table.to_markdown());
    println!(
        "{} artifacts; run one with `tensortee run <id>` (add --json / --fast), or sweep the \
         design space with `tensortee explore <{}>`.",
        registry().len(),
        scenario_list()
    );
}

/// `tensortee run ...`: resolve the artifact selection, run, print.
///
/// Unknown ids are diagnosed on stderr but do not abort the rest of the
/// selection: the known artifacts still run and emit (well-formed JSON
/// under `--json`), and the process exits 1 so scripts notice the
/// partial failure. An entirely-unknown selection runs nothing.
fn run(raw: &[String]) -> ExitCode {
    let args = match Args::parse(raw) {
        Ok(args) => args,
        Err(e) => return usage_error(&e),
    };
    let mut unknown: Vec<&String> = Vec::new();
    let selection: Vec<Artifact> = if args.all {
        if !args.positional.is_empty() {
            return usage_error("--all and explicit ids are mutually exclusive");
        }
        registry().to_vec()
    } else if args.positional.is_empty() {
        return usage_error("run needs artifact ids or --all");
    } else {
        let mut picked = Vec::new();
        for id in &args.positional {
            match find(id) {
                Some(a) => picked.push(a),
                None => unknown.push(id),
            }
        }
        if !unknown.is_empty() {
            let known: Vec<&str> = registry().iter().map(|a| a.id).collect();
            for id in &unknown {
                eprintln!("unknown artifact {id:?}; known ids: {}", known.join(", "));
            }
        }
        picked
    };

    let probe = if args.trace {
        SharedProbe::recording()
    } else {
        SharedProbe::Null
    };
    let ctx = args.context().with_probe(probe.clone());
    if !selection.is_empty() {
        let reports: Vec<Report> = selection
            .iter()
            .map(|a| {
                if !args.json && !args.quiet {
                    eprintln!("running {} ({}) ...", a.id, a.paper_anchor);
                }
                a.run(&ctx)
            })
            .collect();
        emit(&reports, args.json);
    }
    if args.trace {
        let path = args.out.clone().unwrap_or_else(|| "trace.json".to_string());
        if let Err(code) = write_trace(&probe, &path, args.quiet) {
            return code;
        }
    }
    if unknown.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Exports `probe`'s recording as Chrome trace-event JSON at `path`.
fn write_trace(probe: &SharedProbe, path: &str, quiet: bool) -> Result<(), ExitCode> {
    let snap = probe.snapshot().expect("trace paths install a recorder");
    let json = chrome_trace(&snap);
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => {
            if !quiet {
                eprintln!(
                    "wrote {path} ({} events, {} counters); load it at ui.perfetto.dev",
                    snap.events().len(),
                    snap.metrics().len()
                );
            }
            Ok(())
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// `tensortee trace <id> [--out FILE]`: run one artifact under a
/// recording probe and write the Chrome/Perfetto trace-event JSON.
/// Unknown ids exit 1 (the command line was fine; the id was not).
fn trace_cmd(raw: &[String]) -> ExitCode {
    let args = match Args::parse(raw) {
        Ok(args) => args,
        Err(e) => return usage_error(&e),
    };
    let [id] = args.positional.as_slice() else {
        return usage_error("trace needs exactly one artifact id");
    };
    let Some(artifact) = find(id) else {
        let known: Vec<&str> = registry().iter().map(|a| a.id).collect();
        eprintln!("unknown artifact {id:?}; known ids: {}", known.join(", "));
        return ExitCode::FAILURE;
    };
    let probe = SharedProbe::recording();
    let ctx = args.context().with_probe(probe.clone());
    if !args.quiet {
        eprintln!("tracing {} ({}) ...", artifact.id, artifact.paper_anchor);
    }
    let _report = artifact.run(&ctx);
    let path = args
        .out
        .clone()
        .unwrap_or_else(|| format!("trace_{id}.json"));
    match write_trace(&probe, &path, args.quiet) {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

/// `tensortee bench ...`: measure the perf trajectory. Without `--json`
/// the markdown tables go to stdout and the JSON shape is written to
/// `BENCH_<rev>.json`; with `--json` the shape goes to stdout instead
/// (what the CI ratchet consumes) and no file is written.
fn bench(raw: &[String]) -> ExitCode {
    let args = match Args::parse(raw) {
        Ok(args) => args,
        Err(e) => return usage_error(&e),
    };
    if !args.positional.is_empty() {
        return usage_error("bench takes flags only");
    }
    let ctx = args.context();
    let opts = BenchOptions {
        repeats: args.repeats.unwrap_or(3),
        warmup: 1,
        progress: true,
    };
    let trajectory = BenchTrajectory::measure(&ctx, &opts);
    if args.json {
        println!("{}", trajectory.to_json());
        return ExitCode::SUCCESS;
    }
    println!("{}", trajectory.to_markdown());
    let path = trajectory.file_name();
    match std::fs::write(&path, format!("{}\n", trajectory.to_json())) {
        Ok(()) => {
            eprintln!("wrote {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `tensortee explore <scenario> ...`: sweep the scenario's design space
/// and print the Pareto-frontier and sensitivity reports.
fn explore(raw: &[String]) -> ExitCode {
    let args = match Args::parse(raw) {
        Ok(args) => args,
        Err(e) => return usage_error(&e),
    };
    let [scenario_arg] = args.positional.as_slice() else {
        return usage_error(&format!(
            "explore needs exactly one scenario: {}",
            scenario_list()
        ));
    };
    let Some(scenario) = Scenario::parse(scenario_arg) else {
        return usage_error(&format!(
            "unknown scenario {scenario_arg:?}; known: {}",
            scenario_list()
        ));
    };
    let probe = if args.trace {
        SharedProbe::recording()
    } else {
        SharedProbe::Null
    };
    let ctx = args.context().with_probe(probe.clone());
    if !args.json && !args.quiet {
        eprintln!(
            "exploring the {} space: {} points, {} worker threads, seed {} ...",
            scenario.label(),
            ctx.explore_points,
            ctx.worker_threads,
            ctx.seed
        );
    }
    let reports = vec![
        explore_pareto_for(scenario, &ctx).1,
        explore_sensitivity_for(scenario, &ctx).1,
    ];
    emit(&reports, args.json);
    if args.trace {
        let path = args.out.clone().unwrap_or_else(|| "trace.json".to_string());
        if let Err(code) = write_trace(&probe, &path, args.quiet) {
            return code;
        }
    }
    ExitCode::SUCCESS
}
