//! `tensortee` — the CLI driver for the paper-artifact registry.
//!
//! ```sh
//! tensortee list                         # all registered artifacts
//! tensortee run fig16                    # one artifact, markdown
//! tensortee run fig16 fig21 --json      # several artifacts, JSON array
//! tensortee run --all --fast --json     # whole registry, reduced context
//! tensortee explore train --points 64   # design-space sweep: frontier + tornado
//! ```
//!
//! `--fast` swaps the full paper-fidelity [`RunContext`] for the reduced
//! one (coarser simulation scale, GPT/GPT2-M model pair, thinned sweeps);
//! `--json` switches from markdown to the machine-readable report shape
//! documented in EXPERIMENTS.md. Every run is deterministic: the same
//! invocation produces byte-identical output — including `explore`,
//! whose `--threads` knob changes wall-clock but never a byte of output.

use std::process::ExitCode;
use tensortee::artifact::{find, registry, Artifact, RunContext};
use tensortee::explore::{explore_pareto_for, explore_sensitivity_for, Scenario};
use tensortee::json::Json;
use tensortee::report::{Report, Table};

const USAGE: &str = "usage: tensortee <command>

commands:
  list                          list registered artifacts
  run <id>... [flags]           run specific artifacts
  run --all [flags]             run the whole registry
  explore <train|cluster|serve> [flags]
                                sweep the scenario's hardware/security design
                                space: Pareto frontier + tornado sensitivity

flags:
  --json         emit machine-readable JSON instead of markdown
  --fast         reduced context: coarser sim scale, fewer models/sweep points
  --seed <u64>   seed for stochastic artifacts and sampling plans (default 42)
  --threads <N>  explorer worker threads (wall-clock only; output is
                 byte-identical for any N; default 4)
  --points <N>   explorer point budget (default 96, 32 under --fast)";

/// The flags shared by `run` and `explore`, plus the positional args.
struct Args {
    json: bool,
    fast: bool,
    all: bool,
    seed: Option<u64>,
    threads: Option<u32>,
    points: Option<u32>,
    positional: Vec<String>,
}

impl Args {
    /// Parses flags and positionals; `Err` carries the message to print.
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut out = Args {
            json: false,
            fast: false,
            all: false,
            seed: None,
            threads: None,
            points: None,
            positional: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--json" => out.json = true,
                "--fast" => out.fast = true,
                "--all" => out.all = true,
                "--seed" => out.seed = Some(parse_value(arg, it.next())?),
                "--threads" => out.threads = Some(parse_value(arg, it.next())?),
                "--points" => out.points = Some(parse_value(arg, it.next())?),
                flag if flag.starts_with('-') => {
                    return Err(format!("unknown flag {flag:?}"));
                }
                positional => out.positional.push(positional.to_string()),
            }
        }
        Ok(out)
    }

    /// The [`RunContext`] these flags select.
    fn context(&self) -> RunContext {
        let mut ctx = if self.fast {
            RunContext::fast()
        } else {
            RunContext::full()
        };
        if let Some(seed) = self.seed {
            ctx = ctx.with_seed(seed);
        }
        if let Some(threads) = self.threads {
            ctx = ctx.with_worker_threads(threads);
        }
        if let Some(points) = self.points {
            ctx = ctx.with_explore_points(points);
        }
        ctx
    }
}

/// Parses a flag value, reporting the flag name on failure.
fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let value = value.ok_or_else(|| format!("{flag} needs a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag} got an invalid value {value:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        Some("explore") => explore(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Prints `message`, the usage, and returns the CLI error code.
fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Renders `reports` the way both subcommands do: markdown per report, or
/// one JSON object (single report) / array (several).
fn emit(reports: &[Report], json: bool) {
    if json {
        let out = if reports.len() == 1 {
            reports[0].to_json()
        } else {
            Json::Array(reports.iter().map(|r| r.to_json()).collect())
        };
        println!("{out}");
    } else {
        for r in reports {
            println!("{}", r.to_markdown());
        }
    }
}

/// `tensortee list`: one row per registered artifact.
fn list() {
    let mut table = Table::new(["id", "paper anchor", "title", "claim reproduced"]);
    for a in registry() {
        table.row([a.id, a.paper_anchor, a.title, a.claim]);
    }
    println!("{}", table.to_markdown());
    println!(
        "{} artifacts; run one with `tensortee run <id>` (add --json / --fast), or sweep the \
         design space with `tensortee explore <train|cluster|serve>`.",
        registry().len()
    );
}

/// `tensortee run ...`: resolve the artifact selection, run, print.
fn run(raw: &[String]) -> ExitCode {
    let args = match Args::parse(raw) {
        Ok(args) => args,
        Err(e) => return usage_error(&e),
    };
    let selection: Vec<Artifact> = if args.all {
        if !args.positional.is_empty() {
            return usage_error("--all and explicit ids are mutually exclusive");
        }
        registry().to_vec()
    } else if args.positional.is_empty() {
        return usage_error("run needs artifact ids or --all");
    } else {
        let mut picked = Vec::new();
        for id in &args.positional {
            match find(id) {
                Some(a) => picked.push(a),
                None => {
                    let known: Vec<&str> = registry().iter().map(|a| a.id).collect();
                    eprintln!("unknown artifact {id:?}; known ids: {}", known.join(", "));
                    return ExitCode::from(2);
                }
            }
        }
        picked
    };

    let ctx = args.context();
    let reports: Vec<Report> = selection
        .iter()
        .map(|a| {
            if !args.json {
                eprintln!("running {} ({}) ...", a.id, a.paper_anchor);
            }
            a.run(&ctx)
        })
        .collect();
    emit(&reports, args.json);
    ExitCode::SUCCESS
}

/// `tensortee explore <scenario> ...`: sweep the scenario's design space
/// and print the Pareto-frontier and sensitivity reports.
fn explore(raw: &[String]) -> ExitCode {
    let args = match Args::parse(raw) {
        Ok(args) => args,
        Err(e) => return usage_error(&e),
    };
    let [scenario_arg] = args.positional.as_slice() else {
        return usage_error("explore needs exactly one scenario: train, cluster or serve");
    };
    let Some(scenario) = Scenario::parse(scenario_arg) else {
        return usage_error(&format!(
            "unknown scenario {scenario_arg:?}; known: train, cluster, serve"
        ));
    };
    let ctx = args.context();
    if !args.json {
        eprintln!(
            "exploring the {} space: {} points, {} worker threads, seed {} ...",
            scenario.label(),
            ctx.explore_points,
            ctx.worker_threads,
            ctx.seed
        );
    }
    let reports = vec![
        explore_pareto_for(scenario, &ctx).1,
        explore_sensitivity_for(scenario, &ctx).1,
    ];
    emit(&reports, args.json);
    ExitCode::SUCCESS
}
